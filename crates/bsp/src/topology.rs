//! Vertex → worker ownership.
//!
//! Vertex identifiers are dense `0..n` (`u32`). A [`Topology`] maps every
//! vertex to its owning worker and to a dense local index within that
//! worker, supporting both the paper's default random (hash) assignment and
//! explicit partitions produced by a partitioner (the "Wikipedia (P)" runs).

use crate::codec::{Codec, Reader};
use std::sync::Arc;

/// Ownership map of all vertices over a set of workers.
#[derive(Debug, Clone)]
pub struct Topology {
    workers: usize,
    owner: Vec<u16>,
    local_index: Vec<u32>,
    locals: Vec<Vec<u32>>,
    /// Pre-computed mirror/ghost tables for high-degree vertices, when a
    /// degree-aware partitioner built them at ship time. Channels that
    /// replicate vertices (the Mirror channel) pick this up on
    /// construction; everything else ignores it.
    mirror: Option<Arc<MirrorPlan>>,
}

/// One replicated high-degree vertex in a [`MirrorPlan`]: the hub's
/// global id, the sorted set of workers holding a mirror, and — per
/// holding worker — the local indices of the hub's neighbors there, in
/// the hub's adjacency order (duplicates preserved, so mirror-side
/// expansion applies the combiner once per edge occurrence exactly like
/// the unmirrored per-edge path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorHub {
    /// Global id of the mirrored vertex.
    pub id: u32,
    /// Workers holding a mirror, ascending (includes the hub's own worker
    /// when it has local neighbors).
    pub peers: Vec<u16>,
    /// Per peer worker, the local indices its mirror fans a broadcast out
    /// to; same order and length as `peers`.
    pub targets: Vec<(u16, Vec<u32>)>,
}

impl MirrorHub {
    /// Local target indices of this hub's neighbors on `worker`, if any.
    pub fn targets_for(&self, worker: u16) -> Option<&[u32]> {
        self.targets
            .iter()
            .find(|(w, _)| *w == worker)
            .map(|(_, t)| t.as_slice())
    }
}

/// The mirror/ghost tables rank 0 computes at ship time: every vertex
/// with out-degree ≥ `threshold` gets a [`MirrorHub`] entry, so a
/// broadcast from it costs one wire message per holding *worker* instead
/// of one per remote edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorPlan {
    /// The degree threshold τ the plan was built with.
    pub threshold: u64,
    /// Mirrored vertices, ascending by id.
    pub hubs: Vec<MirrorHub>,
}

impl MirrorPlan {
    /// Append the plan's wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        self.threshold.encode(buf);
        (self.hubs.len() as u32).encode(buf);
        for h in &self.hubs {
            h.id.encode(buf);
            h.peers.encode(buf);
            (h.targets.len() as u32).encode(buf);
            for (w, locals) in &h.targets {
                w.encode(buf);
                locals.encode(buf);
            }
        }
    }

    /// Decode a plan from `r`. Plans travel inside the shipped partition
    /// plan, so truncation must surface as an error, never a panic.
    pub fn decode_from(r: &mut Reader) -> Result<Self, String> {
        fn need(r: &Reader, bytes: usize) -> Result<(), String> {
            if r.remaining() < bytes {
                Err("mirror plan truncated".to_string())
            } else {
                Ok(())
            }
        }
        fn u32s(r: &mut Reader) -> Result<Vec<u32>, String> {
            need(r, 4)?;
            let count: u32 = r.get();
            need(r, count as usize * 4)?;
            Ok((0..count).map(|_| r.get::<u32>()).collect())
        }
        need(r, 12)?;
        let threshold: u64 = r.get();
        let hub_count: u32 = r.get();
        let mut hubs = Vec::with_capacity(hub_count.min(1 << 20) as usize);
        for _ in 0..hub_count {
            need(r, 8)?;
            let id: u32 = r.get();
            let peer_count: u32 = r.get();
            need(r, peer_count as usize * 2)?;
            let peers: Vec<u16> = (0..peer_count).map(|_| r.get::<u16>()).collect();
            need(r, 4)?;
            let target_count: u32 = r.get();
            let mut targets = Vec::with_capacity(target_count.min(1 << 20) as usize);
            for _ in 0..target_count {
                need(r, 2)?;
                let w: u16 = r.get();
                targets.push((w, u32s(r)?));
            }
            hubs.push(MirrorHub { id, peers, targets });
        }
        Ok(MirrorPlan { threshold, hubs })
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used for pseudo-random
/// vertex placement; matches the paper's "vertices are randomly assigned to
/// workers" without a seed dependency.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Topology {
    /// Build from an explicit owner vector (`owner[v]` = worker of `v`).
    pub fn from_owners(workers: usize, owner: Vec<u16>) -> Self {
        assert!(workers > 0 && workers <= u16::MAX as usize);
        assert!(
            owner.iter().all(|&w| (w as usize) < workers),
            "owner index out of range"
        );
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); workers];
        let mut local_index = vec![0u32; owner.len()];
        for (v, &w) in owner.iter().enumerate() {
            local_index[v] = locals[w as usize].len() as u32;
            locals[w as usize].push(v as u32);
        }
        Topology {
            workers,
            owner,
            local_index,
            locals,
            mirror: None,
        }
    }

    /// Attach a [`MirrorPlan`] (built at ship time by the partitioner).
    pub fn with_mirror(mut self, plan: Arc<MirrorPlan>) -> Self {
        self.mirror = Some(plan);
        self
    }

    /// The attached mirror plan, if any.
    pub fn mirror_plan(&self) -> Option<&Arc<MirrorPlan>> {
        self.mirror.as_ref()
    }

    /// Pseudo-random (hash) placement of `n` vertices over `workers`
    /// workers — the paper's default.
    pub fn hashed(n: usize, workers: usize) -> Self {
        let owner = (0..n as u64)
            .map(|v| (mix64(v) % workers as u64) as u16)
            .collect();
        Topology::from_owners(workers, owner)
    }

    /// Contiguous block placement (vertex id ranges). Useful when vertex ids
    /// have been relabelled by a partitioner so that blocks are contiguous.
    pub fn blocked(n: usize, workers: usize) -> Self {
        let per = n.div_ceil(workers.max(1)).max(1);
        let owner = (0..n)
            .map(|v| ((v / per).min(workers - 1)) as u16)
            .collect();
        Topology::from_owners(workers, owner)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total number of vertices.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// Owning worker of vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: u32) -> usize {
        self.owner[v as usize] as usize
    }

    /// Dense local index of `v` within its owning worker.
    #[inline]
    pub fn local_of(&self, v: u32) -> u32 {
        self.local_index[v as usize]
    }

    /// Global ids of the vertices on `worker` (local index → global id).
    pub fn locals(&self, worker: usize) -> &[u32] {
        &self.locals[worker]
    }

    /// Number of vertices on `worker`.
    pub fn local_count(&self, worker: usize) -> usize {
        self.locals[worker].len()
    }

    /// Maximum/minimum vertices per worker — load balance diagnostic.
    pub fn balance(&self) -> (usize, usize) {
        let max = self.locals.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.locals.iter().map(Vec::len).min().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_covers_all_vertices_consistently() {
        let t = Topology::hashed(1000, 7);
        assert_eq!(t.n(), 1000);
        let mut seen = 0usize;
        for w in 0..7 {
            for (li, &v) in t.locals(w).iter().enumerate() {
                assert_eq!(t.worker_of(v), w);
                assert_eq!(t.local_of(v) as usize, li);
                seen += 1;
            }
        }
        assert_eq!(seen, 1000);
    }

    #[test]
    fn hashed_is_roughly_balanced() {
        let t = Topology::hashed(100_000, 8);
        let (min, max) = t.balance();
        // Within 10% of perfect balance for a good mix function.
        assert!(min > 100_000 / 8 * 9 / 10, "min={min}");
        assert!(max < 100_000 / 8 * 11 / 10, "max={max}");
    }

    #[test]
    fn blocked_assigns_ranges() {
        let t = Topology::blocked(10, 3);
        assert_eq!(t.worker_of(0), 0);
        assert_eq!(t.worker_of(3), 0);
        assert_eq!(t.worker_of(4), 1);
        assert_eq!(t.worker_of(9), 2);
        assert_eq!(t.local_of(4), 0);
    }

    #[test]
    fn from_owners_explicit() {
        let t = Topology::from_owners(3, vec![2, 0, 2, 1]);
        assert_eq!(t.locals(2), &[0, 2]);
        assert_eq!(t.locals(0), &[1]);
        assert_eq!(t.local_of(2), 1);
        assert_eq!(t.local_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "owner index out of range")]
    fn from_owners_validates_range() {
        Topology::from_owners(2, vec![0, 5]);
    }

    #[test]
    fn single_worker_owns_everything() {
        let t = Topology::hashed(64, 1);
        assert_eq!(t.local_count(0), 64);
        assert_eq!(t.balance(), (64, 64));
    }

    fn sample_plan() -> MirrorPlan {
        MirrorPlan {
            threshold: 16,
            hubs: vec![
                MirrorHub {
                    id: 3,
                    peers: vec![0, 2],
                    targets: vec![(0, vec![1, 4, 4]), (2, vec![0])],
                },
                MirrorHub {
                    id: 9,
                    peers: vec![1],
                    targets: vec![(1, vec![7])],
                },
            ],
        }
    }

    #[test]
    fn mirror_plan_roundtrips() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        plan.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = MirrorPlan::decode_from(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, plan);
        assert_eq!(back.hubs[0].targets_for(2), Some(&[0u32][..]));
        assert_eq!(back.hubs[0].targets_for(1), None);
    }

    #[test]
    fn mirror_plan_decode_rejects_truncation_at_every_cut() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        plan.encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                MirrorPlan::decode_from(&mut r).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn topology_carries_a_mirror_plan() {
        let t = Topology::hashed(8, 2);
        assert!(t.mirror_plan().is_none());
        let t = t.with_mirror(Arc::new(sample_plan()));
        assert_eq!(t.mirror_plan().unwrap().threshold, 16);
        // Cloning keeps the plan shared, not duplicated.
        let c = t.clone();
        assert!(Arc::ptr_eq(
            c.mirror_plan().unwrap(),
            t.mirror_plan().unwrap()
        ));
    }
}
