//! Vertex → worker ownership.
//!
//! Vertex identifiers are dense `0..n` (`u32`). A [`Topology`] maps every
//! vertex to its owning worker and to a dense local index within that
//! worker, supporting both the paper's default random (hash) assignment and
//! explicit partitions produced by a partitioner (the "Wikipedia (P)" runs).

/// Ownership map of all vertices over a set of workers.
#[derive(Debug, Clone)]
pub struct Topology {
    workers: usize,
    owner: Vec<u16>,
    local_index: Vec<u32>,
    locals: Vec<Vec<u32>>,
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used for pseudo-random
/// vertex placement; matches the paper's "vertices are randomly assigned to
/// workers" without a seed dependency.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Topology {
    /// Build from an explicit owner vector (`owner[v]` = worker of `v`).
    pub fn from_owners(workers: usize, owner: Vec<u16>) -> Self {
        assert!(workers > 0 && workers <= u16::MAX as usize);
        assert!(
            owner.iter().all(|&w| (w as usize) < workers),
            "owner index out of range"
        );
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); workers];
        let mut local_index = vec![0u32; owner.len()];
        for (v, &w) in owner.iter().enumerate() {
            local_index[v] = locals[w as usize].len() as u32;
            locals[w as usize].push(v as u32);
        }
        Topology {
            workers,
            owner,
            local_index,
            locals,
        }
    }

    /// Pseudo-random (hash) placement of `n` vertices over `workers`
    /// workers — the paper's default.
    pub fn hashed(n: usize, workers: usize) -> Self {
        let owner = (0..n as u64)
            .map(|v| (mix64(v) % workers as u64) as u16)
            .collect();
        Topology::from_owners(workers, owner)
    }

    /// Contiguous block placement (vertex id ranges). Useful when vertex ids
    /// have been relabelled by a partitioner so that blocks are contiguous.
    pub fn blocked(n: usize, workers: usize) -> Self {
        let per = n.div_ceil(workers.max(1)).max(1);
        let owner = (0..n)
            .map(|v| ((v / per).min(workers - 1)) as u16)
            .collect();
        Topology::from_owners(workers, owner)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total number of vertices.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// Owning worker of vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: u32) -> usize {
        self.owner[v as usize] as usize
    }

    /// Dense local index of `v` within its owning worker.
    #[inline]
    pub fn local_of(&self, v: u32) -> u32 {
        self.local_index[v as usize]
    }

    /// Global ids of the vertices on `worker` (local index → global id).
    pub fn locals(&self, worker: usize) -> &[u32] {
        &self.locals[worker]
    }

    /// Number of vertices on `worker`.
    pub fn local_count(&self, worker: usize) -> usize {
        self.locals[worker].len()
    }

    /// Maximum/minimum vertices per worker — load balance diagnostic.
    pub fn balance(&self) -> (usize, usize) {
        let max = self.locals.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.locals.iter().map(Vec::len).min().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_covers_all_vertices_consistently() {
        let t = Topology::hashed(1000, 7);
        assert_eq!(t.n(), 1000);
        let mut seen = 0usize;
        for w in 0..7 {
            for (li, &v) in t.locals(w).iter().enumerate() {
                assert_eq!(t.worker_of(v), w);
                assert_eq!(t.local_of(v) as usize, li);
                seen += 1;
            }
        }
        assert_eq!(seen, 1000);
    }

    #[test]
    fn hashed_is_roughly_balanced() {
        let t = Topology::hashed(100_000, 8);
        let (min, max) = t.balance();
        // Within 10% of perfect balance for a good mix function.
        assert!(min > 100_000 / 8 * 9 / 10, "min={min}");
        assert!(max < 100_000 / 8 * 11 / 10, "max={max}");
    }

    #[test]
    fn blocked_assigns_ranges() {
        let t = Topology::blocked(10, 3);
        assert_eq!(t.worker_of(0), 0);
        assert_eq!(t.worker_of(3), 0);
        assert_eq!(t.worker_of(4), 1);
        assert_eq!(t.worker_of(9), 2);
        assert_eq!(t.local_of(4), 0);
    }

    #[test]
    fn from_owners_explicit() {
        let t = Topology::from_owners(3, vec![2, 0, 2, 1]);
        assert_eq!(t.locals(2), &[0, 2]);
        assert_eq!(t.locals(0), &[1]);
        assert_eq!(t.local_of(2), 1);
        assert_eq!(t.local_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "owner index out of range")]
    fn from_owners_validates_range() {
        Topology::from_owners(2, vec![0, 5]);
    }

    #[test]
    fn single_worker_owns_everything() {
        let t = Topology::hashed(64, 1);
        assert_eq!(t.local_count(0), 64);
        assert_eq!(t.balance(), (64, 64));
    }
}
