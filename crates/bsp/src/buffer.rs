//! Per-destination raw byte buffers and the channel frame format.
//!
//! Fig. 2 of the paper: each worker owns one raw buffer per peer; all
//! channels of a worker serialize into those shared buffers. We keep the
//! buffers as plain `Vec<u8>` and tag each channel's contribution with a
//! small frame header `(channel_id: u16, payload_len: u32)` so the receiving
//! worker can route each frame back to the right channel.
//!
//! Draining is allocation-free in steady state: [`OutBuffers::drain_into`]
//! swaps each outgoing buffer for one from the worker's
//! [`BufferPool`](crate::pool::BufferPool) and reuses the caller's output
//! vector, so the per-round cost is a handful of pointer swaps.

use crate::metrics::ByteCounter;
use crate::pool::BufferPool;

/// The set of outgoing buffers of one worker — one per peer (including a
/// loop-back buffer for messages whose destination lives on the same
/// worker; those count as `local` bytes, everything else as `remote`).
#[derive(Debug)]
pub struct OutBuffers {
    self_id: usize,
    bufs: Vec<Vec<u8>>,
}

impl OutBuffers {
    /// Create empty buffers for a worker among `workers` peers.
    pub fn new(self_id: usize, workers: usize) -> Self {
        OutBuffers {
            self_id,
            bufs: (0..workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of peers (including self).
    pub fn workers(&self) -> usize {
        self.bufs.len()
    }

    /// Identifier of the owning worker.
    pub fn self_id(&self) -> usize {
        self.self_id
    }

    /// Mutable access to the raw buffer destined for `peer`.
    pub fn buf(&mut self, peer: usize) -> &mut Vec<u8> {
        &mut self.bufs[peer]
    }

    /// Drain all buffers into `out` as `(peer, bytes)` pairs for non-empty
    /// ones, crediting their sizes to `counter`. Each drained buffer is
    /// replaced by one from `pool` (empty, capacity retained), and `out` is
    /// cleared and refilled — so a steady-state drain allocates nothing.
    pub fn drain_into(
        &mut self,
        counter: &mut ByteCounter,
        pool: &mut BufferPool,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) {
        out.clear();
        for (peer, buf) in self.bufs.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            if peer == self.self_id {
                counter.local += buf.len() as u64;
            } else {
                counter.remote += buf.len() as u64;
            }
            let replacement = pool.get();
            out.push((peer, std::mem::replace(buf, replacement)));
        }
    }

    /// Total bytes currently pending across all peers.
    pub fn pending_bytes(&self) -> usize {
        self.bufs.iter().map(Vec::len).sum()
    }
}

/// Writes one channel frame into a raw buffer; finalizes the length header
/// on drop. Payload bytes are appended through [`FrameWriter::payload`].
pub struct FrameWriter<'a> {
    buf: &'a mut Vec<u8>,
    len_at: usize,
}

impl<'a> FrameWriter<'a> {
    /// Open a frame for `channel_id` at the end of `buf`.
    pub fn begin(buf: &'a mut Vec<u8>, channel_id: u16) -> Self {
        buf.extend_from_slice(&channel_id.to_le_bytes());
        let len_at = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes());
        FrameWriter { buf, len_at }
    }

    /// The payload section of the frame (append-only).
    pub fn payload(&mut self) -> &mut Vec<u8> {
        self.buf
    }

    /// Bytes written to the payload so far.
    pub fn payload_len(&self) -> usize {
        self.buf.len() - self.len_at - 4
    }

    /// Abandon the frame if nothing was written, truncating the header.
    /// Returns the final payload length.
    pub fn finish(self) -> usize {
        let n = self.payload_len();
        if n == 0 {
            // Drop the empty frame entirely so it costs zero wire bytes.
            let start = self.len_at - 2;
            self.buf.truncate(start);
        } else {
            let len = (n as u32).to_le_bytes();
            self.buf[self.len_at..self.len_at + 4].copy_from_slice(&len);
        }
        // Defuse the Drop impl.
        std::mem::forget(self);
        n
    }
}

impl Drop for FrameWriter<'_> {
    fn drop(&mut self) {
        let n = self.payload_len();
        let len = (n as u32).to_le_bytes();
        self.buf[self.len_at..self.len_at + 4].copy_from_slice(&len);
    }
}

/// Iterate the `(channel_id, payload)` frames of a received raw buffer.
pub fn iter_frames(data: &[u8]) -> FrameIter<'_> {
    FrameIter { data, pos: 0 }
}

/// Location of one channel frame inside a round's received buffers:
/// `bufs[buf].1[start..end]` is the payload. Engines keep per-channel
/// `Vec<FrameSpan>` routing tables and reuse their capacity across rounds
/// (a span has no lifetime, unlike a payload slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Index into the round's `(sender, buffer)` list.
    pub buf: u32,
    /// Payload start offset within that buffer.
    pub start: u32,
    /// Payload end offset within that buffer.
    pub end: u32,
}

/// Iterate `(channel_id, payload_start..payload_end)` over a received raw
/// buffer — the offset-based sibling of [`iter_frames`].
///
/// Offsets are `u32`; a single exchange buffer must stay under 4 GiB (far
/// above anything the simulated cluster produces, and checked in debug
/// builds so an overflow fails loudly instead of misrouting frames).
pub fn frame_spans(data: &[u8]) -> impl Iterator<Item = (u16, u32, u32)> + '_ {
    debug_assert!(
        u32::try_from(data.len()).is_ok(),
        "exchange buffer exceeds the 4 GiB frame-span offset range"
    );
    iter_frames(data).map(move |(id, payload)| {
        let start = payload.as_ptr() as usize - data.as_ptr() as usize;
        (id, start as u32, (start + payload.len()) as u32)
    })
}

/// Iterator over frames; see [`iter_frames`].
pub struct FrameIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (u16, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let id = u16::from_le_bytes(self.data[self.pos..self.pos + 2].try_into().unwrap());
        let len =
            u32::from_le_bytes(self.data[self.pos + 2..self.pos + 6].try_into().unwrap()) as usize;
        let start = self.pos + 6;
        self.pos = start + len;
        Some((id, &self.data[start..start + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        {
            let mut f = FrameWriter::begin(&mut buf, 3);
            7u32.encode(f.payload());
            8u32.encode(f.payload());
            assert_eq!(f.finish(), 8);
        }
        {
            let mut f = FrameWriter::begin(&mut buf, 9);
            1u8.encode(f.payload());
            f.finish();
        }
        let frames: Vec<_> = iter_frames(&buf).collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, 3);
        assert_eq!(frames[0].1.len(), 8);
        assert_eq!(frames[1].0, 9);
        assert_eq!(frames[1].1, &[1u8][..]);
    }

    #[test]
    fn empty_frame_is_elided() {
        let mut buf = Vec::new();
        let f = FrameWriter::begin(&mut buf, 5);
        assert_eq!(f.finish(), 0);
        assert!(buf.is_empty());
        assert_eq!(iter_frames(&buf).count(), 0);
    }

    #[test]
    fn drop_finalizes_header() {
        let mut buf = Vec::new();
        {
            let mut f = FrameWriter::begin(&mut buf, 1);
            42u64.encode(f.payload());
            // dropped without finish()
        }
        let frames: Vec<_> = iter_frames(&buf).collect();
        assert_eq!(frames, vec![(1u16, &buf[6..14])]);
    }

    #[test]
    fn out_buffers_split_local_and_remote() {
        let mut out = OutBuffers::new(1, 3);
        out.buf(0).extend_from_slice(&[0; 10]);
        out.buf(1).extend_from_slice(&[0; 3]); // self → local
        out.buf(2).extend_from_slice(&[0; 5]);
        let mut c = ByteCounter::default();
        let mut pool = BufferPool::new();
        let mut drained = Vec::new();
        out.drain_into(&mut c, &mut pool, &mut drained);
        assert_eq!(drained.len(), 3);
        assert_eq!(c.remote, 15);
        assert_eq!(c.local, 3);
        assert_eq!(out.pending_bytes(), 0);
    }

    #[test]
    fn empty_buffers_are_not_drained() {
        let mut out = OutBuffers::new(0, 4);
        out.buf(2).push(1);
        let mut c = ByteCounter::default();
        let mut pool = BufferPool::new();
        let mut drained = Vec::new();
        out.drain_into(&mut c, &mut pool, &mut drained);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 2);
    }

    #[test]
    fn steady_state_drain_hits_the_pool() {
        let mut out = OutBuffers::new(0, 2);
        let mut pool = BufferPool::new();
        let mut c = ByteCounter::default();
        let mut drained = Vec::new();
        for round in 0..5 {
            out.buf(1).extend_from_slice(&[7; 64]);
            out.drain_into(&mut c, &mut pool, &mut drained);
            // Simulate the receiver consuming and recycling the buffer.
            for (_, buf) in drained.drain(..) {
                pool.put(buf);
            }
            if round == 0 {
                assert_eq!(pool.stats().misses, 1);
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "only the first round allocates");
        assert_eq!(stats.hits, 4);
    }
}
