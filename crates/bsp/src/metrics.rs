//! Run statistics: bytes per channel, messages, supersteps, wall time.
//!
//! The paper's tables report `runtime (s)` and `message (GB)` per program;
//! [`RunStats`] carries both plus enough breakdown (per-channel bytes,
//! exchange rounds) to explain *where* a reduction came from.

use crate::pool::PoolStats;
use crate::trace::{RankTrace, SuperstepStats};
use std::time::Duration;

/// Local/remote byte tally for one channel on one worker.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ByteCounter {
    /// Bytes whose destination worker differs from the source (the paper's
    /// "message" volume — what would cross the network).
    pub remote: u64,
    /// Bytes addressed to the sending worker itself (loop-back).
    pub local: u64,
}

impl ByteCounter {
    /// Sum both directions.
    pub fn total(&self) -> u64 {
        self.remote + self.local
    }

    /// Accumulate another counter.
    pub fn merge(&mut self, other: &ByteCounter) {
        self.remote += other.remote;
        self.local += other.local;
    }
}

/// Aggregated statistics of one named channel across all workers.
#[derive(Debug, Default, Clone)]
pub struct ChannelMetrics {
    /// Channel name (e.g. `"scatter"`, `"reqresp"`, `"msg"`).
    pub name: String,
    /// Wire bytes attributed to the channel.
    pub bytes: ByteCounter,
    /// Number of application-level messages (combined values, requests,
    /// responses, label updates — channel-specific unit).
    pub messages: u64,
    /// Messages sent as per-worker mirror broadcasts instead of per-edge
    /// sends (Mirror channel; 0 elsewhere).
    pub mirrored: u64,
    /// Per-edge messages the mirror broadcasts avoided — the skew win
    /// (Mirror channel; 0 elsewhere).
    pub mirror_saved: u64,
}

/// Wire-level counters of one exchange transport (see
/// [`crate::transport::ExchangeTransport::stats`]).
///
/// The in-process transport counts mailbox traffic (payload bytes, one
/// frame per post); the TCP transport counts real socket traffic including
/// the 5-byte frame headers and the control frames of its gather/broadcast
/// reductions. `round_trips` counts global reductions — a gather/broadcast
/// exchange with worker 0 on the TCP backend, one barrier-synchronized
/// slot exchange on the in-process backend.
///
/// The trailing fields belong to the batched TCP driver and stay zero
/// everywhere else: `coalesced_frames` counts logical frames that rode
/// inside a coalesced super-frame (each super-frame counts once in
/// `frames` but carries ≥ 2 coalesced sub-frames), `flushes` counts send
/// queues drained completely to the kernel, `send_stall_us` /
/// `recv_stall_us` split the driver's kernel-wait time by what it was
/// stuck on, and `poll_waits` / `wakeups_spurious` count the readiness
/// multiplexer's kernel waits and the wake-ups that moved nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes put on the wire (or through the mailbox) by all workers.
    pub wire_bytes: u64,
    /// Frames sent by all workers (data, skip and reduction frames); a
    /// coalesced super-frame counts as one.
    pub frames: u64,
    /// Global reduction round-trips.
    pub round_trips: u64,
    /// Logical frames carried inside coalesced super-frames (batched TCP
    /// driver; 0 elsewhere).
    pub coalesced_frames: u64,
    /// Send queues fully drained to the kernel (batched TCP driver; 0
    /// elsewhere).
    pub flushes: u64,
    /// Microseconds spent stalled with queued send bytes the kernel would
    /// not accept (batched TCP driver; 0 elsewhere).
    pub send_stall_us: u64,
    /// Microseconds spent waiting for inbound bytes with nothing queued
    /// to send — the receive-side mirror of `send_stall_us`, so the stall
    /// column no longer under-reports pure read waits (batched TCP
    /// driver; 0 elsewhere).
    pub recv_stall_us: u64,
    /// Kernel readiness waits: one per `poll(2)` over the mesh's pollfd
    /// set (batched TCP driver; 0 elsewhere).
    pub poll_waits: u64,
    /// Readiness wake-ups after which a full progress pass moved zero
    /// bytes — spurious wake-ups, a health metric of the interest
    /// computation (batched TCP driver; 0 elsewhere).
    pub wakeups_spurious: u64,
}

impl TransportStats {
    /// Accumulate another transport's counters.
    pub fn merge(&mut self, other: &TransportStats) {
        self.wire_bytes += other.wire_bytes;
        self.frames += other.frames;
        self.round_trips += other.round_trips;
        self.coalesced_frames += other.coalesced_frames;
        self.flushes += other.flushes;
        self.send_stall_us += other.send_stall_us;
        self.recv_stall_us += other.recv_stall_us;
        self.poll_waits += other.poll_waits;
        self.wakeups_spurious += other.wakeups_spurious;
    }

    /// Total microseconds the driver sat in kernel waits, either
    /// direction — the bench's headline stall column.
    pub fn stall_us(&self) -> u64 {
        self.send_stall_us + self.recv_stall_us
    }
}

/// Statistics of one complete run.
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    /// Supersteps executed (global synchronization points).
    pub supersteps: u64,
    /// Total buffer-exchange rounds (≥ supersteps; extra rounds come from
    /// channels whose `again()` returned true, e.g. request/respond or
    /// propagation).
    pub rounds: u64,
    /// Wall-clock duration of the run (excludes graph loading).
    pub elapsed: Duration,
    /// Per-channel byte/message breakdown.
    pub channels: Vec<ChannelMetrics>,
    /// Exchange-buffer pool hits/misses summed over all workers. A
    /// steady-state hit rate near 1.0 means the exchange path stopped
    /// allocating after warm-up.
    pub pool: PoolStats,
    /// Global barrier crossings (threaded mode; 0 in sequential mode).
    pub barrier_crossings: u64,
    /// Arrival-spin iterations burned at the barrier, summed over workers
    /// (threaded in-process mode; 0 elsewhere). Together with
    /// `barrier_crossings` this measures how well the spin budget
    /// ([`crate::Config::spin_budget`]) fits the workload's arrival skew.
    pub barrier_spins: u64,
    /// Largest per-worker application-message volume (Σ `messages` over
    /// that worker's channels) — the skew metric: under a hub-heavy
    /// partition one rank's volume dwarfs the rest, and mirroring is what
    /// bounds it.
    pub max_rank_msgs: u64,
    /// Name of the exchange transport that carried the run
    /// (`"sequential"`, `"in-process"`, `"tcp"`, `"tcp-batched"`).
    pub transport_name: &'static str,
    /// Wire-level transport counters (zero in sequential mode, which
    /// moves buffers without a transport).
    pub transport: TransportStats,
    /// Per-superstep counter rows, summed over all workers — populated
    /// only when the run traced ([`crate::Config::trace`]); empty
    /// otherwise. Row N covers superstep N+1.
    pub timeline: Vec<SuperstepStats>,
    /// The raw per-rank traces behind `timeline` (one per worker, in
    /// rank order, on a common epoch) — the input to
    /// [`crate::trace::chrome_trace_json`]. Empty when the run did not
    /// trace.
    pub traces: Vec<RankTrace>,
    /// Recovery epochs the run went through, summed over ranks at the
    /// gather root (0 on an unfailed run; each surviving rank counts
    /// every epoch it re-joined, so a single failure on an `M`-rank
    /// cluster typically reads `M`).
    pub recoveries: u64,
    /// Total microseconds spent in recovery (mesh teardown through the
    /// resumed superstep loop), summed over ranks.
    pub recovery_us: u64,
}

impl RunStats {
    /// Total remote (network) bytes across channels — the paper's
    /// "message" column.
    pub fn remote_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes.remote).sum()
    }

    /// Total bytes including loop-back traffic.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes.total()).sum()
    }

    /// Total application-level messages across channels.
    pub fn messages(&self) -> u64 {
        self.channels.iter().map(|c| c.messages).sum()
    }

    /// Total messages sent as per-worker mirror broadcasts.
    pub fn mirrored_msgs(&self) -> u64 {
        self.channels.iter().map(|c| c.mirrored).sum()
    }

    /// Total per-edge messages the mirror broadcasts avoided.
    pub fn mirror_saved(&self) -> u64 {
        self.channels.iter().map(|c| c.mirror_saved).sum()
    }

    /// Remote bytes in mebibytes, for table printing.
    pub fn remote_mib(&self) -> f64 {
        self.remote_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Wall time in milliseconds, for table printing.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }

    /// Exchange-buffer pool hit rate over the whole run (1.0 when the run
    /// never requested a buffer).
    pub fn pool_hit_rate(&self) -> f64 {
        self.pool.hit_rate()
    }

    /// Transport wire bytes in mebibytes, for table printing.
    pub fn wire_mib(&self) -> f64 {
        self.transport.wire_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Barrier crossings per exchange round (threaded mode). The pooled
    /// engine performs 2 per round (mailbox sync + fused reduction) plus
    /// at most one extra per superstep for channel-free programs.
    pub fn crossings_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.barrier_crossings as f64 / self.rounds as f64
        }
    }

    /// Merge per-worker channel metrics into this run's totals, matching by
    /// position (all workers create channels in the same order).
    pub fn absorb_channels(&mut self, worker_channels: Vec<ChannelMetrics>) {
        if self.channels.is_empty() {
            self.channels = worker_channels;
            return;
        }
        assert_eq!(
            self.channels.len(),
            worker_channels.len(),
            "workers disagree on channel count"
        );
        for (into, from) in self.channels.iter_mut().zip(worker_channels) {
            debug_assert_eq!(into.name, from.name);
            into.bytes.merge(&from.bytes);
            into.messages += from.messages;
            into.mirrored += from.mirrored;
            into.mirror_saved += from.mirror_saved;
        }
    }

    /// Find a channel's metrics by name (first match).
    pub fn channel(&self, name: &str) -> Option<&ChannelMetrics> {
        self.channels.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(name: &str, remote: u64, local: u64, messages: u64) -> ChannelMetrics {
        ChannelMetrics {
            name: name.to_string(),
            bytes: ByteCounter { remote, local },
            messages,
            ..Default::default()
        }
    }

    #[test]
    fn absorb_accumulates_by_position() {
        let mut stats = RunStats::default();
        stats.absorb_channels(vec![cm("a", 10, 1, 2), cm("b", 5, 0, 1)]);
        stats.absorb_channels(vec![cm("a", 7, 2, 3), cm("b", 0, 0, 0)]);
        assert_eq!(stats.remote_bytes(), 22);
        assert_eq!(stats.total_bytes(), 25);
        assert_eq!(stats.messages(), 6);
        assert_eq!(stats.channel("a").unwrap().bytes.remote, 17);
        assert!(stats.channel("zzz").is_none());
    }

    #[test]
    fn absorb_accumulates_mirror_counters() {
        let mut stats = RunStats::default();
        let mirrored = |m: u64, s: u64| ChannelMetrics {
            name: "mirror".to_string(),
            mirrored: m,
            mirror_saved: s,
            ..Default::default()
        };
        stats.absorb_channels(vec![mirrored(3, 40)]);
        stats.absorb_channels(vec![mirrored(2, 10)]);
        assert_eq!(stats.mirrored_msgs(), 5);
        assert_eq!(stats.mirror_saved(), 50);
    }

    #[test]
    #[should_panic(expected = "disagree on channel count")]
    fn absorb_rejects_mismatched_shapes() {
        let mut stats = RunStats::default();
        stats.absorb_channels(vec![cm("a", 1, 0, 0)]);
        stats.absorb_channels(vec![cm("a", 1, 0, 0), cm("b", 1, 0, 0)]);
    }

    #[test]
    fn byte_counter_merge() {
        let mut a = ByteCounter {
            remote: 1,
            local: 2,
        };
        a.merge(&ByteCounter {
            remote: 10,
            local: 20,
        });
        assert_eq!(
            a,
            ByteCounter {
                remote: 11,
                local: 22
            }
        );
        assert_eq!(a.total(), 33);
    }

    /// `merge` must sum *every* counter field. Both operands are built
    /// with exhaustive struct literals (no `..Default::default()`) so a
    /// newly added `TransportStats` field fails to compile here until
    /// this test — and therefore `merge` — learns about it; each field
    /// carries a distinct value so a summation typo (wrong source field,
    /// assignment instead of `+=`) breaks a distinct assertion.
    #[test]
    fn transport_merge_covers_every_field() {
        let mut a = TransportStats {
            wire_bytes: 1,
            frames: 2,
            round_trips: 3,
            coalesced_frames: 4,
            flushes: 5,
            send_stall_us: 6,
            recv_stall_us: 7,
            poll_waits: 8,
            wakeups_spurious: 9,
        };
        let b = TransportStats {
            wire_bytes: 100,
            frames: 200,
            round_trips: 300,
            coalesced_frames: 400,
            flushes: 500,
            send_stall_us: 600,
            recv_stall_us: 700,
            poll_waits: 800,
            wakeups_spurious: 900,
        };
        a.merge(&b);
        assert_eq!(
            a,
            TransportStats {
                wire_bytes: 101,
                frames: 202,
                round_trips: 303,
                coalesced_frames: 404,
                flushes: 505,
                send_stall_us: 606,
                recv_stall_us: 707,
                poll_waits: 808,
                wakeups_spurious: 909,
            }
        );
        assert_eq!(a.stall_us(), 606 + 707);
    }

    #[test]
    fn unit_helpers() {
        let mut stats = RunStats {
            elapsed: Duration::from_millis(1500),
            ..Default::default()
        };
        stats.absorb_channels(vec![cm("a", 2 * 1024 * 1024, 0, 1)]);
        assert!((stats.remote_mib() - 2.0).abs() < 1e-9);
        assert!((stats.millis() - 1500.0).abs() < 1e-9);
    }
}
