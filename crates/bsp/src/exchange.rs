//! Buffer exchange and synchronization for the threaded execution mode.
//!
//! The paper's workers perform a *pairwise* buffer exchange between the
//! serialize and deserialize steps of every round (Fig. 2/4). Here the
//! "network" is a mailbox matrix: worker `k` posts the buffer destined for
//! `j` into slot `(k, j)`, a barrier separates the post and take phases, and
//! worker `j` drains column `j`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use crossbeam::utils::CachePadded;

/// M×M mailbox of byte buffers.
#[derive(Debug)]
pub struct Mailbox {
    workers: usize,
    slots: Vec<Mutex<Option<Vec<u8>>>>,
}

impl Mailbox {
    /// Create an empty mailbox for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Mailbox {
            workers,
            slots: (0..workers * workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    #[inline]
    fn idx(&self, from: usize, to: usize) -> usize {
        from * self.workers + to
    }

    /// Post a buffer from `from` to `to`. Panics if the slot is occupied —
    /// that would mean two exchange rounds overlapped, i.e. a missing
    /// barrier.
    pub fn post(&self, from: usize, to: usize, data: Vec<u8>) {
        let prev = self.slots[self.idx(from, to)].lock().replace(data);
        assert!(prev.is_none(), "mailbox slot ({from},{to}) posted twice in one round");
    }

    /// Take the buffer posted from `from` to `to`, if any.
    pub fn take(&self, from: usize, to: usize) -> Option<Vec<u8>> {
        self.slots[self.idx(from, to)].lock().take()
    }

    /// Drain every buffer addressed to `to`, in sender order.
    pub fn take_all_for(&self, to: usize) -> Vec<(usize, Vec<u8>)> {
        (0..self.workers)
            .filter_map(|from| self.take(from, to).map(|b| (from, b)))
            .collect()
    }
}

/// Per-worker atomic slots used to compute global reductions (active-vertex
/// counts, channel-active flags) without a coordinator thread.
///
/// Each worker writes only its own row, so writes never contend; the
/// surrounding barriers (see [`Hub::reduce`]) order writes against reads.
#[derive(Debug)]
pub struct SharedReduce {
    lanes: usize,
    slots: Vec<CachePadded<AtomicU64>>,
}

impl SharedReduce {
    /// `workers` rows × `lanes` columns, all zero.
    pub fn new(workers: usize, lanes: usize) -> Self {
        SharedReduce {
            lanes,
            slots: (0..workers * lanes).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Store `value` in `(worker, lane)`.
    pub fn set(&self, worker: usize, lane: usize, value: u64) {
        self.slots[worker * self.lanes + lane].store(value, Ordering::Release);
    }

    /// Sum a lane over all workers.
    pub fn sum(&self, lane: usize) -> u64 {
        let workers = self.slots.len() / self.lanes;
        (0..workers)
            .map(|w| self.slots[w * self.lanes + lane].load(Ordering::Acquire))
            .sum()
    }

    /// Bitwise OR of a lane over all workers.
    pub fn or(&self, lane: usize) -> u64 {
        let workers = self.slots.len() / self.lanes;
        (0..workers)
            .map(|w| self.slots[w * self.lanes + lane].load(Ordering::Acquire))
            .fold(0, |acc, v| acc | v)
    }
}

/// Shared rendezvous object for one threaded run: barrier + mailbox +
/// reduction slots.
#[derive(Debug)]
pub struct Hub {
    workers: usize,
    barrier: Barrier,
    mailbox: Mailbox,
    reduce: SharedReduce,
}

impl Hub {
    /// Create a hub for `workers` workers with `lanes` reduction lanes.
    pub fn new(workers: usize, lanes: usize) -> Self {
        Hub {
            workers,
            barrier: Barrier::new(workers),
            mailbox: Mailbox::new(workers),
            reduce: SharedReduce::new(workers, lanes),
        }
    }

    /// Number of workers synchronizing on this hub.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Block until all workers arrive.
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// The mailbox matrix.
    pub fn mailbox(&self) -> &Mailbox {
        &self.mailbox
    }

    /// Full reduction protocol: publish this worker's `values` (one per
    /// lane), synchronize, read the global sums, synchronize again so no
    /// worker can overwrite its row before everyone has read it.
    ///
    /// Every worker must call this the same number of times with the same
    /// number of lanes.
    pub fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        for (lane, &v) in values.iter().enumerate() {
            self.reduce.set(worker, lane, v);
        }
        self.sync();
        let sums: Vec<u64> = (0..values.len()).map(|lane| self.reduce.sum(lane)).collect();
        self.sync();
        sums
    }

    /// Like [`Hub::reduce`] but combining lane values with bitwise OR —
    /// used for per-channel `again()` bitmasks.
    pub fn reduce_or(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        for (lane, &v) in values.iter().enumerate() {
            self.reduce.set(worker, lane, v);
        }
        self.sync();
        let ors: Vec<u64> = (0..values.len()).map(|lane| self.reduce.or(lane)).collect();
        self.sync();
        ors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mailbox_post_take() {
        let mb = Mailbox::new(3);
        mb.post(0, 2, vec![1, 2, 3]);
        mb.post(1, 2, vec![4]);
        assert_eq!(mb.take(0, 2), Some(vec![1, 2, 3]));
        assert_eq!(mb.take(0, 2), None);
        let rest = mb.take_all_for(2);
        assert_eq!(rest, vec![(1, vec![4])]);
    }

    #[test]
    #[should_panic(expected = "posted twice")]
    fn mailbox_double_post_panics() {
        let mb = Mailbox::new(2);
        mb.post(0, 1, vec![1]);
        mb.post(0, 1, vec![2]);
    }

    #[test]
    fn shared_reduce_sums_lanes() {
        let r = SharedReduce::new(4, 2);
        for w in 0..4 {
            r.set(w, 0, w as u64);
            r.set(w, 1, 10);
        }
        assert_eq!(r.sum(0), 6);
        assert_eq!(r.sum(1), 40);
    }

    #[test]
    fn hub_reduce_across_threads() {
        let hub = Arc::new(Hub::new(4, 1));
        let mut handles = Vec::new();
        for w in 0..4 {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                let mut totals = Vec::new();
                for round in 0..10u64 {
                    let s = hub.reduce(w, &[round + w as u64]);
                    totals.push(s[0]);
                }
                totals
            }));
        }
        let results: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All workers observe identical sums every round.
        for round in 0..10usize {
            let expect = (0..4).map(|w| round as u64 + w as u64).sum::<u64>();
            for r in &results {
                assert_eq!(r[round], expect);
            }
        }
    }

    #[test]
    fn hub_exchange_across_threads() {
        let hub = Arc::new(Hub::new(3, 1));
        let mut handles = Vec::new();
        for w in 0..3usize {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                // Everyone sends its id to everyone (including itself).
                for to in 0..3 {
                    hub.mailbox().post(w, to, vec![w as u8]);
                }
                hub.sync();
                let got = hub.mailbox().take_all_for(w);
                hub.sync();
                got
            }));
        }
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.len(), 3);
            for (from, bytes) in got {
                assert_eq!(bytes, vec![from as u8]);
            }
        }
    }
}
