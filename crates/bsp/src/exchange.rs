//! Buffer exchange and synchronization for the threaded execution mode.
//!
//! The paper's workers perform a *pairwise* buffer exchange between the
//! serialize and deserialize steps of every round (Fig. 2/4). Here the
//! "network" is a mailbox of per-receiver columns: worker `k` posts the
//! buffer destined for `j` into column `j`, a barrier separates the post
//! and take phases, and worker `j` drains its column in one lock.
//!
//! Steady-state cost is the design constraint (the engine crosses this
//! module two times per exchange round):
//!
//! * [`SpinBarrier`] — a sense-reversing barrier that spins briefly, then
//!   yields, then parks. Roughly an order of magnitude cheaper than
//!   `std::sync::Barrier` (which takes a mutex on every arrival) when
//!   workers arrive close together, while still not burning CPU when the
//!   machine is oversubscribed.
//! * [`SharedReduce`] — double-buffered per-worker reduction slots. The
//!   two generations alternate, so a reduction needs only **one** barrier
//!   crossing: the slot a worker writes for reduction `k+2` cannot be read
//!   by a peer still working on reduction `k`, because a full barrier
//!   (reduction `k+1`'s) separates them.
//! * [`Hub::reduce_round`] — the fused round epilogue: the per-channel
//!   `again` OR-mask and the active-vertex sum publish in one reduction
//!   instead of two.
//! * Per-sender return stacks ([`Hub::recycle`] / [`Hub::reclaim_into`])
//!   cycle consumed receive buffers back to their sender's
//!   [`crate::pool::BufferPool`], closing the zero-allocation loop.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Condvar;
use std::time::Duration;

use crate::pool::BufferPool;
use crossbeam::utils::CachePadded;

/// Initial adaptive spin budget (iterations of `spin_loop` hints before
/// yielding, when cores allow).
const SPIN_LIMIT: u32 = 256;
/// Yields to the scheduler before parking on the condvar.
const YIELD_LIMIT: u32 = 64;
/// Floor of the adaptive budget: a few spins are cheaper than the
/// syscall they might save, so the controller never adapts below this.
const SPIN_MIN: u32 = 16;
/// Ceiling of the adaptive budget.
const SPIN_MAX: u32 = 4096;

/// A sense-reversing barrier: spin, then yield, then park.
///
/// Workers spin on a generation counter bumped by the last arriver. The
/// spin phase is skipped entirely when the machine has fewer cores than
/// workers (spinning there only delays the threads that hold progress).
/// The slow path parks on a condvar with a timeout, so a late wake-up can
/// never deadlock the run.
///
/// ## Adaptive spin budget
///
/// With no explicit budget, each barrier tunes its own budget at run time
/// from the measured arrival-spin distribution (closing the ROADMAP
/// "adaptive spin budget" loop). Every non-last arriver observes where
/// its wait resolved and nudges the shared budget:
///
/// * resolved **while spinning** after `s` iterations — the budget tracks
///   the observed skew: move a quarter of the way toward `2·s` (so the
///   typical arrival lands comfortably inside the spin phase without the
///   budget ballooning);
/// * resolved **while yielding** — the peers arrive just past the budget:
///   double it (capped at [`SPIN_MAX`]);
/// * resolved **after parking** — spinning was pure waste for this skew:
///   halve the budget (floored at [`SPIN_MIN`]).
///
/// Updates use relaxed atomics; workers race and the last write wins,
/// which is fine — the budget is a performance hint, not a correctness
/// input, and [`RunStats::barrier_spins`](crate::metrics::RunStats)
/// still reports exactly the spins actually burned. An explicit
/// `Some(n)` budget (the `--spin-budget` escape hatch) disables
/// adaptation entirely, as does an oversubscribed machine (where the
/// budget pins to 0).
#[derive(Debug)]
pub struct SpinBarrier {
    workers: usize,
    /// Current spin budget before yielding; adapted at run time unless
    /// `fixed`.
    budget: CachePadded<AtomicU32>,
    /// True when the budget is pinned: explicit `with_budget(Some(_))`,
    /// or an oversubscribed machine (budget 0).
    fixed: bool,
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicU64>,
    sleepers: CachePadded<AtomicUsize>,
    waits: CachePadded<AtomicU64>,
    /// Arrival-spin iterations burned across all waits — the measurement
    /// the adaptive budget is tuned from.
    spins: CachePadded<AtomicU64>,
    park: std::sync::Mutex<()>,
    unpark: Condvar,
}

/// Where a barrier wait resolved — the adaptive controller's input.
enum Resolved {
    Spin(u32),
    Yield,
    Park,
}

impl SpinBarrier {
    /// Barrier for `workers` threads with the adaptive spin budget.
    pub fn new(workers: usize) -> Self {
        SpinBarrier::with_budget(workers, None)
    }

    /// Barrier for `workers` threads with an explicit spin budget.
    ///
    /// `None` enables the adaptive budget (starting at [`SPIN_LIMIT`]
    /// when the machine has more cores than workers, pinned to 0
    /// otherwise); `Some(n)` forces a fixed budget of `n` iterations
    /// regardless of core count — `Some(0)` disables spinning entirely.
    pub fn with_budget(workers: usize, budget: Option<u32>) -> Self {
        assert!(workers > 0);
        let fixed = budget.is_some();
        let initial = budget.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1);
            if cores > workers {
                SPIN_LIMIT
            } else {
                0
            }
        });
        SpinBarrier {
            workers,
            budget: CachePadded::new(AtomicU32::new(initial)),
            // An adaptive budget of 0 means "oversubscribed": growing it
            // would burn exactly the cores the late threads need.
            fixed: fixed || initial == 0,
            arrived: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicU64::new(0)),
            sleepers: CachePadded::new(AtomicUsize::new(0)),
            waits: CachePadded::new(AtomicU64::new(0)),
            spins: CachePadded::new(AtomicU64::new(0)),
            park: std::sync::Mutex::new(()),
            unpark: Condvar::new(),
        }
    }

    /// Block until all workers arrive.
    pub fn wait(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.workers {
            // Last arriver: reset the count *before* releasing the next
            // generation (newcomers re-enter only after seeing the bump).
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                // Take the lock so the notify cannot slip between a
                // parker's generation re-check and its wait.
                let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
                self.unpark.notify_all();
            }
            return;
        }
        let budget = self.budget.load(Ordering::Relaxed);
        let mut spins = 0u32;
        let mut resolved = Resolved::Spin(0);
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < budget {
                std::hint::spin_loop();
                spins += 1;
            } else if spins < budget + YIELD_LIMIT {
                std::thread::yield_now();
                spins += 1;
                resolved = Resolved::Yield;
            } else {
                resolved = Resolved::Park;
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                let mut guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
                while self.generation.load(Ordering::SeqCst) == gen {
                    let (g, _) = self
                        .unpark
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap_or_else(|e| e.into_inner());
                    guard = g;
                }
                drop(guard);
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                break;
            }
        }
        if let Resolved::Spin(_) = resolved {
            resolved = Resolved::Spin(spins);
        }
        // Charge only the spin-phase iterations (not yields/parks): this
        // is exactly what the adaptive budget spends.
        self.spins
            .fetch_add(spins.min(budget) as u64, Ordering::Relaxed);
        if !self.fixed {
            self.adapt(budget, resolved);
        }
    }

    /// One controller step: nudge the shared budget from where this wait
    /// resolved (see the type docs for the policy).
    fn adapt(&self, budget: u32, resolved: Resolved) {
        let next = match resolved {
            Resolved::Spin(s) => {
                let target = (s.saturating_mul(2)).clamp(SPIN_MIN, SPIN_MAX);
                if target >= budget {
                    budget + (target - budget) / 4
                } else {
                    budget - (budget - target) / 4
                }
            }
            Resolved::Yield => budget.saturating_mul(2).clamp(SPIN_MIN, SPIN_MAX),
            Resolved::Park => (budget / 2).max(SPIN_MIN),
        };
        if next != budget {
            self.budget.store(next, Ordering::Relaxed);
        }
    }

    /// Total `wait` calls across all workers (waits ÷ workers = barrier
    /// crossings) — the observability hook behind
    /// [`crate::metrics::RunStats::barrier_crossings`].
    pub fn total_waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Arrival-spin iterations burned across all waits — the hook behind
    /// [`crate::metrics::RunStats::barrier_spins`].
    pub fn total_spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// The barrier's current spin budget (iterations before yielding).
    /// Fixed for `with_budget(Some(_))` barriers; a live, adapting value
    /// otherwise.
    pub fn spin_budget(&self) -> u32 {
        self.budget.load(Ordering::Relaxed)
    }
}

/// One mailbox column: the `(sender, bytes)` pairs addressed to a worker
/// this round.
type Column = CachePadded<Mutex<Vec<(usize, Vec<u8>)>>>;

/// M-column mailbox of byte buffers: column `j` holds everything addressed
/// to worker `j` this round, posted as `(sender, bytes)` pairs.
#[derive(Debug)]
pub struct Mailbox {
    columns: Vec<Column>,
}

impl Mailbox {
    /// Create an empty mailbox for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Mailbox {
            columns: (0..workers)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Post a buffer from `from` to `to` — one column lock. Panics if
    /// `from` already posted to `to` this round: that would mean two
    /// exchange rounds overlapped, i.e. a missing barrier.
    pub fn post(&self, from: usize, to: usize, data: Vec<u8>) {
        let mut col = self.columns[to].lock();
        assert!(
            col.iter().all(|&(f, _)| f != from),
            "mailbox slot ({from},{to}) posted twice in one round"
        );
        col.push((from, data));
    }

    /// Take the buffer posted from `from` to `to`, if any.
    pub fn take(&self, from: usize, to: usize) -> Option<Vec<u8>> {
        let mut col = self.columns[to].lock();
        let at = col.iter().position(|&(f, _)| f == from)?;
        Some(col.remove(at).1)
    }

    /// Drain every buffer addressed to `to` into `out`, in sender order,
    /// under a single column lock. `out` is cleared first; its capacity
    /// (and the column's) is reused round over round. This is the only
    /// drain: the old allocating `take_all_for` drifted out of the hot
    /// path and was removed.
    pub fn take_all_into(&self, to: usize, out: &mut Vec<(usize, Vec<u8>)>) {
        out.clear();
        std::mem::swap(&mut *self.columns[to].lock(), out);
        // Arrival order is racy; sender order is the deterministic one.
        out.sort_unstable_by_key(|&(from, _)| from);
    }
}

/// Per-worker atomic slots used to compute global reductions (active-vertex
/// counts, channel-active flags) without a coordinator thread.
///
/// Slots are double-buffered by reduction generation: consecutive
/// reductions write alternating halves, so one barrier per reduction is
/// enough (see the module docs for the argument).
#[derive(Debug)]
pub struct SharedReduce {
    workers: usize,
    lanes: usize,
    slots: Vec<CachePadded<AtomicU64>>,
}

impl SharedReduce {
    /// `workers` rows × `lanes` columns × 2 generations, all zero.
    pub fn new(workers: usize, lanes: usize) -> Self {
        SharedReduce {
            workers,
            lanes,
            slots: (0..2 * workers * lanes)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn idx(&self, generation: u64, worker: usize, lane: usize) -> usize {
        ((generation as usize & 1) * self.workers + worker) * self.lanes + lane
    }

    /// Store `value` in `(worker, lane)` of `generation`'s half.
    pub fn set(&self, generation: u64, worker: usize, lane: usize, value: u64) {
        self.slots[self.idx(generation, worker, lane)].store(value, Ordering::Release);
    }

    /// Sum a lane over all workers in `generation`'s half.
    pub fn sum(&self, generation: u64, lane: usize) -> u64 {
        (0..self.workers)
            .map(|w| self.slots[self.idx(generation, w, lane)].load(Ordering::Acquire))
            .sum()
    }

    /// Bitwise OR of a lane over all workers in `generation`'s half.
    pub fn or(&self, generation: u64, lane: usize) -> u64 {
        (0..self.workers)
            .map(|w| self.slots[self.idx(generation, w, lane)].load(Ordering::Acquire))
            .fold(0, |acc, v| acc | v)
    }
}

/// Shared rendezvous object for one threaded run: barrier + mailbox +
/// reduction slots + buffer return stacks.
#[derive(Debug)]
pub struct Hub {
    workers: usize,
    barrier: SpinBarrier,
    mailbox: Mailbox,
    reduce: SharedReduce,
    /// Per-worker reduction counters (each written only by its owner);
    /// drive the generation parity of [`SharedReduce`].
    reductions: Vec<CachePadded<AtomicU64>>,
    /// `returns[k]`: consumed receive buffers awaiting reclamation by
    /// their sender `k`.
    returns: Vec<CachePadded<Mutex<Vec<Vec<u8>>>>>,
}

impl Hub {
    /// Create a hub for `workers` workers with `lanes` reduction lanes.
    pub fn new(workers: usize, lanes: usize) -> Self {
        Hub::with_budget(workers, lanes, None)
    }

    /// [`Hub::new`] with an explicit barrier spin budget (see
    /// [`SpinBarrier::with_budget`]).
    pub fn with_budget(workers: usize, lanes: usize, budget: Option<u32>) -> Self {
        Hub {
            workers,
            barrier: SpinBarrier::with_budget(workers, budget),
            mailbox: Mailbox::new(workers),
            reduce: SharedReduce::new(workers, lanes),
            reductions: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            returns: (0..workers)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Number of workers synchronizing on this hub.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Block until all workers arrive.
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// Global barrier crossings so far (total waits ÷ workers).
    pub fn barrier_crossings(&self) -> u64 {
        self.barrier.total_waits() / self.workers as u64
    }

    /// Arrival-spin iterations burned at the barrier, summed over workers.
    pub fn barrier_spins(&self) -> u64 {
        self.barrier.total_spins()
    }

    /// The mailbox.
    pub fn mailbox(&self) -> &Mailbox {
        &self.mailbox
    }

    /// Hand consumed receive buffers back to the worker that sent them.
    pub fn recycle(&self, sender: usize, bufs: impl IntoIterator<Item = Vec<u8>>) {
        self.returns[sender].lock().extend(bufs);
    }

    /// Move every buffer returned to `worker` into its pool.
    pub fn reclaim_into(&self, worker: usize, pool: &mut BufferPool) {
        let mut returned = self.returns[worker].lock();
        pool.put_all(returned.drain(..));
    }

    /// This worker's next reduction generation. All workers perform the
    /// same reduction sequence, so the per-worker counters stay in
    /// lock-step without sharing a cache line.
    fn next_generation(&self, worker: usize) -> u64 {
        self.reductions[worker].fetch_add(1, Ordering::Relaxed)
    }

    /// Reduction protocol: publish this worker's `values` (one per lane),
    /// cross the barrier once, read the global sums.
    ///
    /// Every worker must call the reduction methods in the same order with
    /// the same number of lanes.
    pub fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        let generation = self.next_generation(worker);
        for (lane, &v) in values.iter().enumerate() {
            self.reduce.set(generation, worker, lane, v);
        }
        self.sync();
        (0..values.len())
            .map(|lane| self.reduce.sum(generation, lane))
            .collect()
    }

    /// Like [`Hub::reduce`] but combining lane values with bitwise OR —
    /// used for per-channel `again()` bitmasks.
    pub fn reduce_or(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        let generation = self.next_generation(worker);
        for (lane, &v) in values.iter().enumerate() {
            self.reduce.set(generation, worker, lane, v);
        }
        self.sync();
        (0..values.len())
            .map(|lane| self.reduce.or(generation, lane))
            .collect()
    }

    /// The fused round epilogue: OR-combine `again` and sum `active` in a
    /// single barrier crossing. Requires a hub with ≥ 2 lanes.
    pub fn reduce_round(&self, worker: usize, again: u64, active: u64) -> (u64, u64) {
        let generation = self.next_generation(worker);
        self.reduce.set(generation, worker, 0, again);
        self.reduce.set(generation, worker, 1, active);
        self.sync();
        (
            self.reduce.or(generation, 0),
            self.reduce.sum(generation, 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mailbox_post_take() {
        let mb = Mailbox::new(3);
        mb.post(0, 2, vec![1, 2, 3]);
        mb.post(1, 2, vec![4]);
        assert_eq!(mb.take(0, 2), Some(vec![1, 2, 3]));
        assert_eq!(mb.take(0, 2), None);
        let mut rest = Vec::new();
        mb.take_all_into(2, &mut rest);
        assert_eq!(rest, vec![(1, vec![4])]);
    }

    /// Drains are deterministic: whatever order buffers were posted in,
    /// `take_all_into` yields ascending sender ids — the order every
    /// transport must reproduce.
    #[test]
    fn mailbox_take_all_sorts_by_sender() {
        let mb = Mailbox::new(4);
        mb.post(3, 0, vec![3]);
        mb.post(1, 0, vec![1]);
        mb.post(2, 0, vec![2]);
        let mut got = Vec::new();
        mb.take_all_into(0, &mut got);
        assert_eq!(got, vec![(1, vec![1]), (2, vec![2]), (3, vec![3])]);
        mb.take_all_into(0, &mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn mailbox_take_all_into_reuses_capacity() {
        let mb = Mailbox::new(2);
        let mut out = Vec::new();
        for _ in 0..3 {
            mb.post(0, 1, vec![7; 32]);
            mb.take_all_into(1, &mut out);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "posted twice")]
    fn mailbox_double_post_panics() {
        let mb = Mailbox::new(2);
        mb.post(0, 1, vec![1]);
        mb.post(0, 1, vec![2]);
    }

    #[test]
    fn shared_reduce_sums_lanes_per_generation() {
        let r = SharedReduce::new(4, 2);
        for w in 0..4 {
            r.set(0, w, 0, w as u64);
            r.set(0, w, 1, 10);
            r.set(1, w, 0, 100); // other generation, must not interfere
        }
        assert_eq!(r.sum(0, 0), 6);
        assert_eq!(r.sum(0, 1), 40);
        assert_eq!(r.sum(1, 0), 400);
        assert_eq!(r.sum(2, 0), 6, "generation 2 aliases generation 0's half");
    }

    #[test]
    fn spin_barrier_releases_all() {
        let b = Arc::new(SpinBarrier::new(4));
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    b.wait();
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 400);
        assert_eq!(b.total_waits(), 400);
    }

    #[test]
    fn hub_reduce_across_threads() {
        let hub = Arc::new(Hub::new(4, 2));
        let mut handles = Vec::new();
        for w in 0..4 {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                let mut totals = Vec::new();
                for round in 0..10u64 {
                    let s = hub.reduce(w, &[round + w as u64]);
                    totals.push(s[0]);
                }
                totals
            }));
        }
        let results: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All workers observe identical sums every round.
        for round in 0..10usize {
            let expect = (0..4).map(|w| round as u64 + w as u64).sum::<u64>();
            for r in &results {
                assert_eq!(r[round], expect);
            }
        }
    }

    #[test]
    fn hub_fused_round_reduction() {
        let hub = Arc::new(Hub::new(3, 2));
        let mut handles = Vec::new();
        for w in 0..3 {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for round in 0..50u64 {
                    let again = if w == 1 && round % 2 == 0 { 0b10 } else { 0 };
                    let (mask, active) = hub.reduce_round(w, again, w as u64 + round);
                    seen.push((mask, active));
                }
                seen
            }));
        }
        let results: Vec<Vec<(u64, u64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for round in 0..50u64 {
            let expect_mask = if round % 2 == 0 { 0b10 } else { 0 };
            let expect_active = (0..3).map(|w| w as u64 + round).sum::<u64>();
            for r in &results {
                assert_eq!(
                    r[round as usize],
                    (expect_mask, expect_active),
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn hub_exchange_across_threads() {
        let hub = Arc::new(Hub::new(3, 1));
        let mut handles = Vec::new();
        for w in 0..3usize {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                // Everyone sends its id to everyone (including itself).
                for to in 0..3 {
                    hub.mailbox().post(w, to, vec![w as u8]);
                }
                hub.sync();
                let mut got = Vec::new();
                hub.mailbox().take_all_into(w, &mut got);
                hub.sync();
                got
            }));
        }
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.len(), 3);
            for (from, bytes) in got {
                assert_eq!(bytes, vec![from as u8]);
            }
        }
    }

    #[test]
    fn hub_recycles_buffers_to_sender_pool() {
        let hub = Hub::new(2, 1);
        let mut pool = BufferPool::new();
        hub.recycle(0, vec![vec![1, 2, 3], vec![4; 100]]);
        hub.reclaim_into(0, &mut pool);
        assert_eq!(pool.available(), 2);
        let buf = pool.get();
        assert!(
            buf.is_empty() && buf.capacity() >= 3,
            "recycled buffers are cleared"
        );
        // Nothing was returned for worker 1.
        let mut pool1 = BufferPool::new();
        hub.reclaim_into(1, &mut pool1);
        assert_eq!(pool1.available(), 0);
    }

    /// A zero budget disables spinning entirely: whatever the arrival
    /// skew, no spin iterations are recorded.
    #[test]
    fn zero_spin_budget_never_spins() {
        let b = Arc::new(SpinBarrier::with_budget(2, Some(0)));
        assert_eq!(b.spin_budget(), 0);
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            for _ in 0..20 {
                b2.wait();
            }
        });
        for _ in 0..20 {
            std::thread::sleep(Duration::from_micros(200));
            b.wait();
        }
        h.join().unwrap();
        assert_eq!(b.total_spins(), 0);
    }

    /// A forced budget spins even when the heuristic would park: a worker
    /// that arrives well before its peer exhausts the whole budget.
    #[test]
    fn forced_spin_budget_is_exhausted_by_an_early_arriver() {
        let b = Arc::new(SpinBarrier::with_budget(2, Some(96)));
        assert_eq!(b.spin_budget(), 96);
        let b2 = Arc::clone(&b);
        // The early arriver spins its full 96 iterations (and then some
        // yields) long before the 20ms sleeper shows up.
        let h = std::thread::spawn(move || b2.wait());
        std::thread::sleep(Duration::from_millis(20));
        b.wait();
        h.join().unwrap();
        assert_eq!(b.total_spins(), 96, "early arriver burns the budget");
    }

    /// Arrival skew far beyond any useful spin budget: the adaptive
    /// controller observes park-resolved waits and walks the budget down
    /// from its initial value, so heavily skewed workloads stop burning
    /// CPU at the barrier.
    #[test]
    fn adaptive_budget_shrinks_under_heavy_skew() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores <= 2 {
            // The adaptive budget pins to 0 on oversubscribed machines;
            // nothing to observe here.
            return;
        }
        let b = Arc::new(SpinBarrier::new(2));
        let initial = b.spin_budget();
        assert!(initial > 0, "not oversubscribed, so spinning starts on");
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            for _ in 0..12 {
                b2.wait();
            }
        });
        for _ in 0..12 {
            // Arrive milliseconds late: the peer always parks.
            std::thread::sleep(Duration::from_millis(4));
            b.wait();
        }
        h.join().unwrap();
        assert!(
            b.spin_budget() < initial,
            "budget did not shrink: {} vs initial {initial}",
            b.spin_budget()
        );
        assert!(b.spin_budget() >= SPIN_MIN);
    }

    /// The adapted budget always stays inside its clamp, whatever the
    /// arrival pattern; tight lock-step crossings keep it live (non-zero)
    /// rather than collapsing it.
    #[test]
    fn adaptive_budget_stays_clamped_under_tight_arrivals() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores <= 2 {
            return;
        }
        let b = Arc::new(SpinBarrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let budget = b.spin_budget();
        assert!(
            (SPIN_MIN..=SPIN_MAX).contains(&budget),
            "budget {budget} escaped its clamp"
        );
    }

    /// The `--spin-budget` escape hatch: an explicit budget never adapts,
    /// whatever the measured skew.
    #[test]
    fn fixed_budget_never_adapts() {
        let b = Arc::new(SpinBarrier::with_budget(2, Some(96)));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            for _ in 0..8 {
                b2.wait();
            }
        });
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(3));
            b.wait();
        }
        h.join().unwrap();
        assert_eq!(b.spin_budget(), 96, "a fixed budget must stay fixed");
    }

    #[test]
    fn barrier_crossings_counted_globally() {
        let hub = Arc::new(Hub::new(2, 2));
        let mut handles = Vec::new();
        for w in 0..2 {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    hub.sync();
                }
                let _ = hub.reduce_round(w, 0, 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.barrier_crossings(), 6, "5 syncs + 1 fused reduction");
    }
}
