//! A real-socket exchange transport: every worker behind a loopback TCP
//! connection.
//!
//! This backend replaces the shared-memory mailbox of
//! [`crate::exchange::Hub`] with an N×N mesh of `TcpStream`s while keeping
//! the engine-observable behavior identical (see
//! `tests/transport_conformance.rs`). It is the deployable shape of the
//! simulated cluster: swap the loopback addresses for real hosts and the
//! same wire protocol runs a multi-process deployment.
//!
//! ## Wire protocol
//!
//! Every message is one length-prefixed frame, encoded with the existing
//! [`Codec`] discipline:
//!
//! ```text
//! frame := tag:u8  len:u32(LE)  payload[len]
//! ```
//!
//! * `HELLO`  — mesh handshake; payload is the sender's rank (`u32`).
//! * `DATA`   — one exchange buffer, exactly as the engine posted it.
//! * `SKIP`   — "nothing for you this round"; emitted by [`Tcp::sync`] so
//!   every receiver sees exactly one frame per peer per round and knows
//!   the round is complete without a barrier.
//! * `REDUCE` — a worker's reduction contribution, gathered by worker 0.
//! * `RESULT` — the combined reduction, broadcast by worker 0.
//!
//! ## Design notes
//!
//! * **Determinism without select.** All workers drive the transport in
//!   lock-step (the engine's masks are global decisions), so each socket
//!   carries a deterministic frame sequence and a receiver can simply
//!   read its peers in ascending rank order — no polling, no reordering.
//!   `take_all_into` therefore yields buffers in sender order, exactly
//!   like the mailbox's sorted drain.
//! * **Zero-copy staging survives.** `post` writes the pooled buffer
//!   straight to the socket and parks the `Vec` on a per-worker return
//!   stack; `reclaim_into` hands it back to the engine's
//!   [`BufferPool`] next round, so pool hit/miss traffic matches the
//!   in-process backend byte for byte. Receive buffers cycle through a
//!   private per-worker freelist refilled by `recycle`.
//! * **Reductions are a gather/broadcast round on worker 0** (the paper's
//!   master-less reductions need shared memory): workers send `REDUCE` to
//!   rank 0, rank 0 combines and broadcasts `RESULT`. One round-trip per
//!   reduction, counted in [`TransportStats::round_trips`].
//! * **Nothing blocks forever.** Every socket operation polls with a
//!   short kernel timeout against an explicit deadline and fails with a
//!   typed [`TransportError`] when it expires; a late peer within the
//!   connect deadline is tolerated, an absent one is an error, not a
//!   hang.

use crate::codec::{Codec, Reader};
use crate::metrics::TransportStats;
use crate::pool::BufferPool;
use crate::transport::{ExchangeTransport, TransportError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Frame tag: mesh handshake (payload = sender rank as `u32`).
pub const TAG_HELLO: u8 = b'H';
/// Frame tag: one posted exchange buffer.
pub const TAG_DATA: u8 = b'D';
/// Frame tag: empty round marker (no payload).
pub const TAG_SKIP: u8 = b'S';
/// Frame tag: reduction contribution (worker → rank 0).
pub const TAG_REDUCE: u8 = b'R';
/// Frame tag: combined reduction result (rank 0 → worker).
pub const TAG_RESULT: u8 = b'r';

/// Reduction op: lane-wise sum.
const OP_SUM: u8 = 0;
/// Reduction op: lane 0 OR, lane 1 sum (the fused round epilogue).
const OP_FUSED: u8 = 1;

/// Kernel-level poll granularity for blocking socket calls. Deadlines are
/// enforced on top of this, so no operation can hang.
const POLL: Duration = Duration::from_millis(20);

/// Minimum capacity `recycle` always keeps on a receive buffer, so the
/// watermark trim never churns small steady-state buffers.
const READ_RETAIN_MIN: usize = 4096;

/// Upper bound on a sane frame payload; anything larger is treated as a
/// protocol violation instead of an attempted allocation.
const MAX_FRAME: usize = 1 << 30;

/// Frame header size on the wire: tag byte + `u32` length prefix.
pub const FRAME_HEADER: u64 = 5;

/// Tuning knobs of the TCP transport.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// How long mesh setup may wait for peers to appear (covers workers
    /// that start late).
    pub connect_timeout: Duration,
    /// Deadline for any single exchange/reduction operation once the mesh
    /// is up.
    pub io_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Prepare a socket for transport use: disable Nagle and install the
/// short kernel poll timeouts that [`read_frame_into`] / [`write_frame`]
/// rely on for deadline enforcement.
pub fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(POLL))?;
    Ok(())
}

fn io_err(peer: usize, during: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        peer,
        kind: e.kind(),
        during,
    }
}

fn is_poll_expiry(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) || e.kind() == std::io::ErrorKind::Interrupted
}

/// `read_exact` with a deadline: tolerates arbitrarily split reads,
/// returns [`TransportError::Truncated`] on EOF mid-buffer and
/// [`TransportError::Timeout`] past the deadline — never hangs.
fn read_exact_deadline(
    mut stream: &TcpStream,
    out: &mut [u8],
    deadline: Instant,
    peer: usize,
    during: &'static str,
) -> Result<(), TransportError> {
    let mut got = 0;
    while got < out.len() {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout { peer, during });
        }
        match stream.read(&mut out[got..]) {
            Ok(0) => {
                return Err(TransportError::Truncated {
                    peer,
                    expected: out.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if is_poll_expiry(&e) => continue,
            Err(e) => return Err(io_err(peer, during, e)),
        }
    }
    Ok(())
}

/// `write_all` with a deadline; never hangs.
fn write_all_deadline(
    mut stream: &TcpStream,
    data: &[u8],
    deadline: Instant,
    peer: usize,
    during: &'static str,
) -> Result<(), TransportError> {
    let mut sent = 0;
    while sent < data.len() {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout { peer, during });
        }
        match stream.write(&data[sent..]) {
            Ok(0) => {
                return Err(TransportError::Disconnected { peer, during });
            }
            Ok(n) => sent += n,
            Err(e) if is_poll_expiry(&e) => continue,
            Err(e) => return Err(io_err(peer, during, e)),
        }
    }
    Ok(())
}

/// Build a frame header, rejecting payloads the receiver would refuse —
/// the error belongs at the *send* site, and a length past `u32` must
/// never silently truncate the prefix and desync the wire.
fn frame_header(
    tag: u8,
    payload: &[u8],
    peer: usize,
) -> Result<[u8; FRAME_HEADER as usize], TransportError> {
    if payload.len() > MAX_FRAME {
        return Err(TransportError::Protocol {
            peer,
            detail: format!(
                "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        });
    }
    let mut header = [0u8; FRAME_HEADER as usize];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    Ok(header)
}

/// Write one `tag + len + payload` frame. The stream must have been set
/// up with [`configure_stream`]; the deadline bounds the whole write.
pub fn write_frame(
    stream: &TcpStream,
    tag: u8,
    payload: &[u8],
    deadline: Instant,
    peer: usize,
) -> Result<(), TransportError> {
    let header = frame_header(tag, payload, peer)?;
    write_all_deadline(stream, &header, deadline, peer, "write frame header")?;
    write_all_deadline(stream, payload, deadline, peer, "write frame payload")
}

/// Read one frame into `payload` (cleared and resized), returning the
/// tag. Handles short and split reads; a peer that closes mid-frame
/// yields [`TransportError::Truncated`] / `Disconnected`, a deadline
/// expiry yields [`TransportError::Timeout`] — this call cannot hang.
pub fn read_frame_into(
    stream: &TcpStream,
    payload: &mut Vec<u8>,
    deadline: Instant,
    peer: usize,
) -> Result<u8, TransportError> {
    let mut header = [0u8; FRAME_HEADER as usize];
    read_exact_deadline(stream, &mut header, deadline, peer, "read frame header").map_err(|e| {
        // EOF on a frame boundary is a disconnect, not a truncation.
        match e {
            TransportError::Truncated { peer, got: 0, .. } => TransportError::Disconnected {
                peer,
                during: "read frame header",
            },
            other => other,
        }
    })?;
    let tag = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Protocol {
            peer,
            detail: format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
        });
    }
    payload.clear();
    payload.resize(len, 0);
    read_exact_deadline(stream, payload, deadline, peer, "read frame payload")?;
    Ok(tag)
}

/// An incoming frame caught mid-flight by a drain-on-stall pass. The
/// drain never blocks on a frame's remainder (its sender may itself be
/// stalled draining); whatever is missing is picked up by the next drain
/// pass or finished by [`next_frame`] once this worker's writes are done.
#[derive(Debug, Default)]
struct PartialRead {
    header: [u8; FRAME_HEADER as usize],
    header_got: usize,
    buf: Vec<u8>,
    payload_got: usize,
}

impl PartialRead {
    fn tag(&self) -> u8 {
        self.header[0]
    }

    /// Validate the completed header and size the payload buffer.
    fn start_payload(
        &mut self,
        read_pool: &mut Vec<Vec<u8>>,
        peer: usize,
    ) -> Result<(), TransportError> {
        let len = u32::from_le_bytes(self.header[1..5].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Protocol {
                peer,
                detail: format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
            });
        }
        self.buf = read_pool.pop().unwrap_or_default();
        self.buf.clear();
        self.buf.resize(len, 0);
        self.payload_got = 0;
        Ok(())
    }
}

/// Consume everything currently available on `stream` without blocking,
/// advancing (or creating) the peer's [`PartialRead`] and queueing every
/// completed frame on `early`. Returns the bytes consumed.
fn drain_available(
    stream: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
) -> Result<usize, TransportError> {
    stream
        .set_nonblocking(true)
        .map_err(|e| io_err(peer, "drain set_nonblocking", e))?;
    let result = drain_available_nonblocking(stream, pending, early, read_pool, peer);
    stream
        .set_nonblocking(false)
        .map_err(|e| io_err(peer, "drain restore blocking", e))?;
    result
}

fn drain_available_nonblocking(
    mut stream: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
) -> Result<usize, TransportError> {
    let mut consumed = 0;
    loop {
        let pr = pending.get_or_insert_with(PartialRead::default);
        let dst: &mut [u8] = if pr.header_got < pr.header.len() {
            &mut pr.header[pr.header_got..]
        } else {
            &mut pr.buf[pr.payload_got..]
        };
        if dst.is_empty() {
            // Zero-length payload frame completed on the header alone.
            let pr = pending.take().unwrap();
            early.push_back((pr.tag(), pr.buf));
            continue;
        }
        match stream.read(dst) {
            Ok(0) => {
                return Err(TransportError::Disconnected {
                    peer,
                    during: "drain frame",
                })
            }
            Ok(n) => {
                consumed += n;
                if pr.header_got < pr.header.len() {
                    pr.header_got += n;
                    if pr.header_got == pr.header.len() {
                        pr.start_payload(read_pool, peer)?;
                    }
                } else {
                    pr.payload_got += n;
                }
                if pr.header_got == pr.header.len() && pr.payload_got == pr.buf.len() {
                    let pr = pending.take().unwrap();
                    early.push_back((pr.tag(), pr.buf));
                }
            }
            Err(e) if is_poll_expiry(&e) => return Ok(consumed),
            Err(e) => return Err(io_err(peer, "drain frame", e)),
        }
    }
}

/// The next frame from `peer`: drained frames first, then the peer's
/// in-flight partial (finished blocking — safe here, because `next_frame`
/// is only called once this worker's own writes for the phase are
/// complete, so the sender cannot be waiting on us), then the socket.
fn next_frame(
    link: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    deadline: Instant,
    peer: usize,
) -> Result<(u8, Vec<u8>), TransportError> {
    if let Some(frame) = early.pop_front() {
        return Ok(frame);
    }
    if let Some(mut pr) = pending.take() {
        if pr.header_got < pr.header.len() {
            let at = pr.header_got;
            read_exact_deadline(
                link,
                &mut pr.header[at..],
                deadline,
                peer,
                "read frame header",
            )?;
            pr.header_got = pr.header.len();
            pr.start_payload(read_pool, peer)?;
        }
        let at = pr.payload_got;
        read_exact_deadline(
            link,
            &mut pr.buf[at..],
            deadline,
            peer,
            "read frame payload",
        )?;
        return Ok((pr.tag(), pr.buf));
    }
    let mut buf = read_pool.pop().unwrap_or_default();
    let tag = read_frame_into(link, &mut buf, deadline, peer)?;
    Ok((tag, buf))
}

/// Write one frame to `links[to]`, draining available inbound bytes from
/// every peer whenever the kernel send buffer stalls.
///
/// In an all-to-all bulk exchange every worker writes before it reads;
/// with frames larger than the kernel's socket buffering, plain blocking
/// writes would mutually stall until the io deadline. A stalled writer
/// therefore consumes whatever its peers have managed to send —
/// incrementally, via per-peer [`PartialRead`]s, never blocking on a
/// frame remainder whose sender may itself be stalled — so every pipe
/// keeps moving and the exchange always makes progress. The deadline
/// still backstops a genuinely dead peer with a typed error.
#[allow(clippy::too_many_arguments)]
fn write_frame_draining(
    links: &[Option<TcpStream>],
    pending: &mut [Option<PartialRead>],
    early: &mut [VecDeque<(u8, Vec<u8>)>],
    read_pool: &mut Vec<Vec<u8>>,
    worker: usize,
    to: usize,
    tag: u8,
    payload: &[u8],
    deadline: Instant,
) -> Result<(), TransportError> {
    let mut stream = links[to].as_ref().expect("mesh link missing");
    let header = frame_header(tag, payload, to)?;
    let total = header.len() + payload.len();
    let mut sent = 0;
    while sent < total {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout {
                peer: to,
                during: "write frame",
            });
        }
        let chunk = if sent < header.len() {
            &header[sent..]
        } else {
            &payload[sent - header.len()..]
        };
        match stream.write(chunk) {
            Ok(0) => {
                return Err(TransportError::Disconnected {
                    peer: to,
                    during: "write frame",
                })
            }
            Ok(n) => sent += n,
            Err(e) if is_poll_expiry(&e) => {
                let mut drained = 0;
                for (p, link) in links.iter().enumerate() {
                    if p == worker {
                        continue;
                    }
                    let Some(l) = link else { continue };
                    drained += drain_available(l, &mut pending[p], &mut early[p], read_pool, p)?;
                }
                if drained == 0 {
                    // Nothing moved anywhere: back off briefly instead of
                    // spinning against a full pipe.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => return Err(io_err(to, "write frame", e)),
        }
    }
    Ok(())
}

/// Per-worker endpoint state. Each worker locks only its own endpoint, so
/// the mutexes are uncontended; they exist to make the shared [`Tcp`]
/// object `Sync`.
#[derive(Debug, Default)]
struct Endpoint {
    /// Socket to each peer (`None` for self and until the mesh is up).
    links: Vec<Option<TcpStream>>,
    /// Buffer posted to self this round (loop-back skips the wire).
    self_slot: Option<Vec<u8>>,
    /// Peers already posted to this round (double-post guard + SKIP set).
    posted: Vec<bool>,
    /// Private freelist of receive buffers, refilled by `recycle`.
    read_pool: Vec<Vec<u8>>,
    /// Decaying high-water mark of received frame sizes: bounds how much
    /// capacity `recycle` keeps on the receive freelist, so one giant
    /// superstep cannot pin giant receive buffers for the transport's
    /// lifetime (the receive-side sibling of `BufferPool::end_round`).
    read_watermark: usize,
    /// Per-peer frames read ahead of schedule by a drain-on-stall pass,
    /// consumed (in arrival order) before the socket is touched again.
    early: Vec<VecDeque<(u8, Vec<u8>)>>,
    /// Per-peer frame fragments caught mid-flight by a drain pass.
    pending: Vec<Option<PartialRead>>,
    /// Posted buffers awaiting `reclaim_into` (their bytes are already on
    /// the wire; the `Vec`s go home to the engine's pool).
    send_returns: Vec<Vec<u8>>,
    /// Scratch for reduction payload encoding.
    scratch: Vec<u8>,
    /// This worker's share of the wire counters.
    stats: TransportStats,
}

/// The TCP exchange transport: a full mesh of sockets between `workers`
/// workers. See the module docs for the protocol.
///
/// Two deployment shapes share this type:
///
/// * [`Tcp::loopback`] — every worker lives in this process (one thread
///   each) and the mesh runs over loopback sockets. This is the simulated
///   cluster used by `Config::tcp`.
/// * [`Tcp::mesh`] — this process owns exactly **one** rank of a
///   multi-process deployment; the peer addresses come from an
///   out-of-process rendezvous (`pc_dist::bootstrap`) and may live on
///   other hosts. Only the local rank's endpoint may be driven.
#[derive(Debug)]
pub struct Tcp {
    workers: usize,
    /// `Some(rank)` when this object is one rank of a multi-process mesh
    /// (only that endpoint may be driven); `None` for the in-process
    /// loopback mesh where every worker is local.
    local: Option<usize>,
    opts: TcpOptions,
    addrs: Vec<SocketAddr>,
    /// Listener for each rank, taken by its worker during mesh setup.
    listeners: Vec<Mutex<Option<TcpListener>>>,
    endpoints: Vec<Mutex<Endpoint>>,
}

impl Tcp {
    /// Bind a loopback mesh for `workers` workers with default options.
    ///
    /// Listeners are bound immediately (so peer addresses are known and
    /// connections queue in the kernel even before a worker thread
    /// starts); the sockets are connected lazily on each worker's first
    /// transport operation.
    pub fn loopback(workers: usize) -> Result<Self, TransportError> {
        Tcp::loopback_with(workers, TcpOptions::default())
    }

    /// [`Tcp::loopback`] with explicit timeouts.
    pub fn loopback_with(workers: usize, opts: TcpOptions) -> Result<Self, TransportError> {
        assert!(workers > 0);
        let mut addrs = Vec::with_capacity(workers);
        let mut listeners = Vec::with_capacity(workers);
        for rank in 0..workers {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).map_err(|e| TransportError::Connect {
                    peer: rank,
                    detail: format!("bind 127.0.0.1:0: {e}"),
                })?;
            addrs.push(listener.local_addr().map_err(|e| TransportError::Connect {
                peer: rank,
                detail: format!("local_addr: {e}"),
            })?);
            listeners.push(Mutex::new(Some(listener)));
        }
        let endpoints = Tcp::fresh_endpoints(workers);
        Ok(Tcp {
            workers,
            local: None,
            opts,
            addrs,
            listeners,
            endpoints,
        })
    }

    /// Join a multi-process mesh as `rank`.
    ///
    /// `addrs` is the full peer table (one data-plane address per rank, as
    /// exchanged by the bootstrap rendezvous) and `listener` is this
    /// process's already-bound data listener — it must be the socket whose
    /// address was published as `addrs[rank]`, so peers connecting to that
    /// address reach it. The mesh links are established lazily on the
    /// first transport operation, exactly like the loopback shape: connect
    /// to every lower rank, accept (and `HELLO`-identify) every higher
    /// one.
    ///
    /// Only endpoint `rank` may be driven through the returned object;
    /// driving any other worker panics, because those ranks live in other
    /// processes.
    pub fn mesh(
        rank: usize,
        addrs: Vec<SocketAddr>,
        listener: TcpListener,
        opts: TcpOptions,
    ) -> Result<Self, TransportError> {
        let workers = addrs.len();
        assert!(rank < workers, "rank {rank} out of range 0..{workers}");
        let mut listeners: Vec<Mutex<Option<TcpListener>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        *listeners[rank].get_mut() = Some(listener);
        Ok(Tcp {
            workers,
            local: Some(rank),
            opts,
            addrs,
            listeners,
            endpoints: Tcp::fresh_endpoints(workers),
        })
    }

    fn fresh_endpoints(workers: usize) -> Vec<Mutex<Endpoint>> {
        (0..workers)
            .map(|_| {
                Mutex::new(Endpoint {
                    links: (0..workers).map(|_| None).collect(),
                    posted: vec![false; workers],
                    early: (0..workers).map(|_| VecDeque::new()).collect(),
                    pending: (0..workers).map(|_| None).collect(),
                    ..Endpoint::default()
                })
            })
            .collect()
    }

    /// The data-plane addresses, rank by rank (bound listeners for the
    /// loopback shape, the rendezvous peer table for the mesh shape).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The rank this object drives in a multi-process mesh (`None` for
    /// the all-local loopback shape).
    pub fn local_rank(&self) -> Option<usize> {
        self.local
    }

    /// Panic unless `w` is drivable from this process.
    fn assert_local(&self, w: usize) {
        if let Some(rank) = self.local {
            assert_eq!(
                rank, w,
                "worker {w} driven through the mesh endpoint of rank {rank}; \
                 that worker lives in another process"
            );
        }
    }

    /// Capacity currently parked on `worker`'s receive freelist —
    /// observability for the watermark trim (see `Endpoint::read_watermark`).
    pub fn receive_pool_bytes(&self, worker: usize) -> usize {
        self.endpoints[worker]
            .lock()
            .read_pool
            .iter()
            .map(Vec::capacity)
            .sum()
    }

    /// Establish worker `w`'s mesh links: connect to every lower rank,
    /// accept from every higher rank (identified by their `HELLO`).
    fn ensure_connected(&self, w: usize, ep: &mut Endpoint) -> Result<(), TransportError> {
        if (0..self.workers).all(|p| p == w || ep.links[p].is_some()) {
            return Ok(());
        }
        let deadline = Instant::now() + self.opts.connect_timeout;
        for p in 0..w {
            if ep.links[p].is_some() {
                continue;
            }
            let stream = loop {
                match TcpStream::connect(self.addrs[p]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Connect {
                                peer: p,
                                detail: format!("connect {}: {e}", self.addrs[p]),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            configure_stream(&stream).map_err(|e| io_err(p, "configure stream", e))?;
            let mut hello = Vec::with_capacity(4);
            (w as u32).encode(&mut hello);
            write_frame(&stream, TAG_HELLO, &hello, deadline, p)?;
            ep.stats.frames += 1;
            ep.stats.wire_bytes += FRAME_HEADER + hello.len() as u64;
            ep.links[p] = Some(stream);
        }
        let expect_higher = (w + 1..self.workers).any(|p| ep.links[p].is_none());
        if expect_higher {
            // Borrow the listener; it is only released (closed) once the
            // mesh is complete, so a failed setup can be retried.
            let mut slot = self.listeners[w].lock();
            let listener = slot.as_ref().ok_or_else(|| TransportError::Connect {
                peer: w,
                detail: "listener already released but mesh incomplete".to_string(),
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|e| io_err(w, "listener set_nonblocking", e))?;
            let mut scratch = Vec::new();
            while (w + 1..self.workers).any(|p| ep.links[p].is_none()) {
                if Instant::now() >= deadline {
                    let missing = (w + 1..self.workers)
                        .find(|&p| ep.links[p].is_none())
                        .unwrap();
                    return Err(TransportError::Timeout {
                        peer: missing,
                        during: "accept mesh connection",
                    });
                }
                let stream = match listener.accept() {
                    Ok((s, _)) => s,
                    Err(e) if is_poll_expiry(&e) => {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    Err(e) => return Err(io_err(w, "accept", e)),
                };
                stream
                    .set_nonblocking(false)
                    .map_err(|e| io_err(w, "accepted set_nonblocking", e))?;
                configure_stream(&stream).map_err(|e| io_err(w, "configure stream", e))?;
                let tag = read_frame_into(&stream, &mut scratch, deadline, usize::MAX)?;
                if tag != TAG_HELLO || scratch.len() != 4 {
                    return Err(TransportError::Protocol {
                        peer: usize::MAX,
                        detail: format!(
                            "expected HELLO, got tag {tag:#04x} ({} bytes)",
                            scratch.len()
                        ),
                    });
                }
                let peer = u32::from_le_bytes(scratch[..4].try_into().unwrap()) as usize;
                if peer <= w || peer >= self.workers || ep.links[peer].is_some() {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: "HELLO from an unexpected or duplicate rank".to_string(),
                    });
                }
                ep.links[peer] = Some(stream);
            }
            // All higher ranks connected: the listener's job is done.
            *slot = None;
        }
        Ok(())
    }

    /// Run `f` on worker `w`'s endpoint with the mesh guaranteed up.
    fn with_endpoint<R>(
        &self,
        w: usize,
        f: impl FnOnce(&mut Endpoint) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        self.assert_local(w);
        let mut ep = self.endpoints[w].lock();
        self.ensure_connected(w, &mut ep)?;
        f(&mut ep)
    }

    fn io_deadline(&self) -> Instant {
        Instant::now() + self.opts.io_timeout
    }

    /// Fallible [`ExchangeTransport::post`].
    pub fn try_post(&self, from: usize, to: usize, data: Vec<u8>) -> Result<(), TransportError> {
        let deadline = self.io_deadline();
        self.with_endpoint(from, |ep| {
            assert!(
                !ep.posted[to],
                "transport slot ({from},{to}) posted twice in one round"
            );
            ep.posted[to] = true;
            if to == from {
                ep.self_slot = Some(data);
                return Ok(());
            }
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                send_returns,
                stats,
                ..
            } = ep;
            write_frame_draining(
                links, pending, early, read_pool, from, to, TAG_DATA, &data, deadline,
            )?;
            stats.frames += 1;
            stats.wire_bytes += FRAME_HEADER + data.len() as u64;
            send_returns.push(data);
            Ok(())
        })
    }

    /// Fallible [`ExchangeTransport::sync`]: emit `SKIP` markers to every
    /// peer not posted to, completing the round on all receivers.
    pub fn try_sync(&self, worker: usize) -> Result<(), TransportError> {
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                posted,
                stats,
                ..
            } = ep;
            for (p, &was_posted) in posted.iter().enumerate() {
                if p == worker || was_posted {
                    continue;
                }
                write_frame_draining(
                    links,
                    pending,
                    early,
                    read_pool,
                    worker,
                    p,
                    TAG_SKIP,
                    &[],
                    deadline,
                )?;
                stats.frames += 1;
                stats.wire_bytes += FRAME_HEADER;
            }
            posted.fill(false);
            Ok(())
        })
    }

    /// Fallible [`ExchangeTransport::take_all_into`]: exactly one frame
    /// per peer per round, ascending rank order, self-delivery in rank
    /// place.
    pub fn try_take_all_into(
        &self,
        worker: usize,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) -> Result<(), TransportError> {
        let deadline = self.io_deadline();
        out.clear();
        self.with_endpoint(worker, |ep| {
            let Endpoint {
                links,
                self_slot,
                read_pool,
                early,
                pending,
                read_watermark,
                ..
            } = ep;
            let mut round_max = 0usize;
            for (p, link) in links.iter().enumerate() {
                if p == worker {
                    if let Some(buf) = self_slot.take() {
                        out.push((p, buf));
                    }
                    continue;
                }
                let stream = link.as_ref().expect("mesh link missing");
                let (tag, buf) = next_frame(
                    stream,
                    &mut pending[p],
                    &mut early[p],
                    read_pool,
                    deadline,
                    p,
                )?;
                match tag {
                    TAG_DATA => {
                        round_max = round_max.max(buf.len());
                        out.push((p, buf));
                    }
                    TAG_SKIP => read_pool.push(buf),
                    other => {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!("expected DATA/SKIP, got tag {other:#04x}"),
                        })
                    }
                }
            }
            // Decay toward the current round's largest frame: a one-off
            // spike stops dominating within a few dozen rounds, while a
            // sustained large working set holds the watermark up.
            *read_watermark = round_max.max(*read_watermark - *read_watermark / 4);
            Ok(())
        })
    }

    /// Fallible generic reduction (gather on rank 0, broadcast back).
    fn try_reduce_op(
        &self,
        worker: usize,
        op: u8,
        values: &[u64],
    ) -> Result<Vec<u64>, TransportError> {
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let lanes = values.len();
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                scratch,
                stats,
                ..
            } = ep;
            if worker == 0 {
                let mut acc = values.to_vec();
                for (p, link) in links.iter().enumerate().skip(1) {
                    let stream = link.as_ref().expect("mesh link missing");
                    let (tag, payload) = next_frame(
                        stream,
                        &mut pending[p],
                        &mut early[p],
                        read_pool,
                        deadline,
                        p,
                    )?;
                    if tag != TAG_REDUCE {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!("expected REDUCE, got tag {tag:#04x}"),
                        });
                    }
                    let mut r = Reader::new(&payload);
                    let peer_op: u8 = r.get();
                    let peer_lanes: u32 = r.get();
                    if peer_op != op || peer_lanes as usize != lanes {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!(
                                "reduction shape mismatch: op {peer_op}/{op}, \
                                 lanes {peer_lanes}/{lanes}"
                            ),
                        });
                    }
                    for (lane, slot) in acc.iter_mut().enumerate() {
                        let v: u64 = r.get();
                        match (op, lane) {
                            (OP_FUSED, 0) => *slot |= v,
                            _ => *slot += v,
                        }
                    }
                    read_pool.push(payload);
                }
                scratch.clear();
                for &v in &acc {
                    v.encode(scratch);
                }
                for p in 1..links.len() {
                    write_frame_draining(
                        links, pending, early, read_pool, worker, p, TAG_RESULT, scratch, deadline,
                    )?;
                    stats.frames += 1;
                    stats.wire_bytes += FRAME_HEADER + scratch.len() as u64;
                }
                stats.round_trips += 1;
                Ok(acc)
            } else {
                scratch.clear();
                op.encode(scratch);
                (lanes as u32).encode(scratch);
                for &v in values {
                    v.encode(scratch);
                }
                write_frame_draining(
                    links, pending, early, read_pool, worker, 0, TAG_REDUCE, scratch, deadline,
                )?;
                stats.frames += 1;
                stats.wire_bytes += FRAME_HEADER + scratch.len() as u64;
                let stream = links[0].as_ref().expect("mesh link missing");
                let (tag, payload) = next_frame(
                    stream,
                    &mut pending[0],
                    &mut early[0],
                    read_pool,
                    deadline,
                    0,
                )?;
                if tag != TAG_RESULT {
                    return Err(TransportError::Protocol {
                        peer: 0,
                        detail: format!("expected RESULT, got tag {tag:#04x}"),
                    });
                }
                let mut r = Reader::new(&payload);
                let result = (0..lanes).map(|_| r.get()).collect();
                read_pool.push(payload);
                Ok(result)
            }
        })
    }

    /// Fallible [`ExchangeTransport::reduce`].
    pub fn try_reduce(&self, worker: usize, values: &[u64]) -> Result<Vec<u64>, TransportError> {
        self.try_reduce_op(worker, OP_SUM, values)
    }

    /// Fallible [`ExchangeTransport::reduce_round`].
    pub fn try_reduce_round(
        &self,
        worker: usize,
        again: u64,
        active: u64,
    ) -> Result<(u64, u64), TransportError> {
        let r = self.try_reduce_op(worker, OP_FUSED, &[again, active])?;
        Ok((r[0], r[1]))
    }
}

/// Panic message for the infallible trait surface: the engine treats a
/// transport failure like any other worker panic (the run aborts), while
/// the fault-injection tests use the fallible `try_*` methods directly.
fn bail(e: TransportError) -> ! {
    panic!("tcp transport: {e}")
}

impl ExchangeTransport for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn post(&self, from: usize, to: usize, data: Vec<u8>) {
        self.try_post(from, to, data).unwrap_or_else(|e| bail(e))
    }

    fn sync(&self, worker: usize) {
        self.try_sync(worker).unwrap_or_else(|e| bail(e))
    }

    fn take_all_into(&self, worker: usize, out: &mut Vec<(usize, Vec<u8>)>) {
        self.try_take_all_into(worker, out)
            .unwrap_or_else(|e| bail(e))
    }

    fn recycle(&self, worker: usize, sender: usize, mut buf: Vec<u8>) {
        // Receive buffers never leave the receiving worker; buffers the
        // worker sent to itself rejoin the send-return path — with their
        // length intact, so `BufferPool::put` charges them to the round
        // footprint exactly like the in-process return stacks do.
        self.assert_local(worker);
        let mut ep = self.endpoints[worker].lock();
        if sender == worker {
            ep.send_returns.push(buf);
        } else {
            buf.clear();
            // Release capacity a one-off giant round would otherwise pin
            // on the receive freelist forever (watermark-bounded, so a
            // sustained large working set is left alone).
            let cap_limit = (2 * ep.read_watermark).max(READ_RETAIN_MIN);
            if buf.capacity() > cap_limit {
                buf.shrink_to(cap_limit);
            }
            ep.read_pool.push(buf);
        }
    }

    fn reclaim_into(&self, worker: usize, pool: &mut BufferPool) {
        self.assert_local(worker);
        let mut ep = self.endpoints[worker].lock();
        pool.put_all(ep.send_returns.drain(..));
    }

    fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        self.try_reduce(worker, values).unwrap_or_else(|e| bail(e))
    }

    fn reduce_round(&self, worker: usize, again: u64, active: u64) -> (u64, u64) {
        self.try_reduce_round(worker, again, active)
            .unwrap_or_else(|e| bail(e))
    }

    fn stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for ep in &self.endpoints {
            total.merge(&ep.lock().stats);
        }
        total
    }

    fn worker_stats(&self, worker: usize) -> TransportStats {
        self.endpoints[worker].lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Full mesh exchange + fused reduction across real sockets.
    #[test]
    fn tcp_exchange_and_reduce_round() {
        let t = Arc::new(Tcp::loopback(3).unwrap());
        let mut handles = Vec::new();
        for w in 0..3usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                let mut seen = Vec::new();
                for round in 0..5u8 {
                    // Send to self and to (w+1) % 3 only; others get SKIP.
                    t.post(w, w, vec![round, w as u8]);
                    t.post(w, (w + 1) % 3, vec![round, w as u8, 7]);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(w, s, buf);
                    }
                    seen.push(senders);
                    let (mask, active) = t.reduce_round(w, 1 << w, w as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                seen
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let seen = h.join().unwrap();
            // Every round: one buffer from the predecessor, one from self,
            // in ascending sender order.
            let pred = (w + 2) % 3;
            let mut expect = vec![pred, w];
            expect.sort_unstable();
            for senders in seen {
                assert_eq!(senders, expect, "worker {w}");
            }
        }
        let stats = t.stats();
        assert!(stats.wire_bytes > 0);
        assert_eq!(stats.round_trips, 5);
    }

    /// One giant round must not pin giant receive buffers on the
    /// transport's freelist forever: the decaying watermark releases the
    /// capacity once rounds shrink again.
    #[test]
    fn giant_round_receive_buffers_are_trimmed() {
        let t = Arc::new(Tcp::loopback(2).unwrap());
        let mut handles = Vec::new();
        for w in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                for round in 0..40usize {
                    let size = if round == 0 { 1 << 20 } else { 256 };
                    t.post(w, 1 - w, vec![w as u8; size]);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    for (s, buf) in received.drain(..) {
                        t.recycle(w, s, buf);
                    }
                    let _ = t.reduce(w, &[1]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..2 {
            let pooled = t.receive_pool_bytes(w);
            assert!(
                pooled <= 64 << 10,
                "worker {w} still pins {pooled} bytes of receive capacity"
            );
        }
    }

    /// The multi-process shape: each rank owns its own `Tcp::mesh` object
    /// (separate listener, shared address table) and the meshes
    /// interoperate over real sockets exactly like the loopback shape —
    /// exchange, SKIP markers, fused reductions.
    #[test]
    fn mesh_endpoints_in_separate_objects_interoperate() {
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
            .collect();
        let addrs: Vec<std::net::SocketAddr> =
            listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                let t = Tcp::mesh(rank, addrs, listener, TcpOptions::default()).unwrap();
                assert_eq!(t.local_rank(), Some(rank));
                let mut received = Vec::new();
                for round in 0..4u8 {
                    t.post(rank, rank, vec![round, rank as u8]);
                    t.post(rank, (rank + 1) % 3, vec![round, rank as u8, 9]);
                    t.sync(rank);
                    t.take_all_into(rank, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(rank, s, buf);
                    }
                    let mut expect = vec![(rank + 2) % 3, rank];
                    expect.sort_unstable();
                    assert_eq!(senders, expect, "rank {rank} round {round}");
                    let (mask, active) = t.reduce_round(rank, 1 << rank, rank as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                t.worker_stats(rank)
            }));
        }
        let mut wire = 0;
        for h in handles {
            wire += h.join().unwrap().wire_bytes;
        }
        assert!(wire > 0);
    }

    /// A mesh object refuses to drive any rank but its own: those workers
    /// live in other processes.
    #[test]
    #[should_panic(expected = "lives in another process")]
    fn mesh_guards_nonlocal_workers() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = Tcp::mesh(0, vec![addr, addr], listener, TcpOptions::default()).unwrap();
        t.post(1, 0, vec![1]);
    }

    /// Posted buffers come home to the engine pool via reclaim, exactly
    /// like the in-process return stacks.
    #[test]
    fn tcp_send_buffers_are_reclaimed() {
        let t = Arc::new(Tcp::loopback(2).unwrap());
        let mut handles = Vec::new();
        for w in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut pool = BufferPool::new();
                let mut received = Vec::new();
                for _ in 0..3 {
                    t.reclaim_into(w, &mut pool);
                    let mut buf = pool.get();
                    buf.extend_from_slice(&[w as u8; 16]);
                    t.post(w, 1 - w, buf);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    for (s, b) in received.drain(..) {
                        t.recycle(w, s, b);
                    }
                    let _ = t.reduce(w, &[1]);
                }
                pool.stats()
            }));
        }
        for h in handles {
            let stats = h.join().unwrap();
            // Round 1 allocates the send buffer; rounds 2-3 reuse it.
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 2);
        }
    }
}
