//! A real-socket exchange transport: every worker behind a loopback TCP
//! connection.
//!
//! This backend replaces the shared-memory mailbox of
//! [`crate::exchange::Hub`] with an N×N mesh of `TcpStream`s while keeping
//! the engine-observable behavior identical (see
//! `tests/transport_conformance.rs`). It is the deployable shape of the
//! simulated cluster: swap the loopback addresses for real hosts and the
//! same wire protocol runs a multi-process deployment.
//!
//! ## Wire protocol
//!
//! Every message is one length-prefixed frame, encoded with the existing
//! [`Codec`] discipline:
//!
//! ```text
//! frame := tag:u8  len:u32(LE)  payload[len]
//! ```
//!
//! * `HELLO`  — mesh handshake; payload is the sender's rank (`u32`).
//! * `DATA`   — one exchange buffer, exactly as the engine posted it.
//! * `SKIP`   — "nothing for you this round"; emitted by [`Tcp::sync`] so
//!   every receiver sees exactly one frame per peer per round and knows
//!   the round is complete without a barrier.
//! * `REDUCE` — a worker's reduction contribution, gathered by worker 0.
//! * `RESULT` — the combined reduction, broadcast by worker 0.
//! * `BATCH`  — a coalesced super-frame (batched driver only): several
//!   logical frames to the same peer packed behind one header. The
//!   payload is a sub-frame directory (`count:u32`, then `tag:u8
//!   len:u32` per sub-frame) followed by the concatenated sub-frame
//!   payloads; the receiver splits it back into the original frames, so
//!   everything above the transport — values, [`ChannelMetrics`] bytes
//!   and messages, rounds, pool traffic — is byte-identical to the
//!   un-batched drivers. (`ChannelMetrics` accounting happens at the
//!   engine's serialize step and never sees transport framing at all.)
//!
//! ## Two drivers, one wire
//!
//! [`TcpOptions::batched`] selects between two concurrency models over
//! the same frame format:
//!
//! * **Synchronous** (`batched = false`, transport name `"tcp"`): `post`
//!   blocks on `write_all`, `take_all_into` blocks on reads peer by peer.
//!   One frame per write, one write per frame. A bolt-on drain-on-stall
//!   path rescues all-to-all exchanges larger than kernel socket
//!   buffering.
//! * **Non-blocking batched** (`batched = true`, transport name
//!   `"tcp-batched"`): every socket runs in `set_nonblocking` mode and a
//!   single readiness loop drives all progress. `post` only enqueues into
//!   a per-peer send queue and opportunistically pumps the sockets, so
//!   serializing the next destination's buffer overlaps the wire transfer
//!   of the previous one; partial reads *and* partial writes resume from
//!   per-peer cursors inside the same loop. Small frames that share a
//!   peer are coalesced into one `BATCH` super-frame — in particular a
//!   worker's `DATA`/`SKIP` toward the reduction root is held until the
//!   round's `REDUCE` joins it, turning the two per-round control frames
//!   into one (see [`Tcp::try_flush`] for the escape hatch when no
//!   reduction follows, e.g. the multi-process result gather).
//!
//! ## Design notes
//!
//! * **Determinism without select.** All workers drive the transport in
//!   lock-step (the engine's masks are global decisions), so each socket
//!   carries a deterministic frame sequence and a receiver can simply
//!   read its peers in ascending rank order — no polling, no reordering.
//!   `take_all_into` therefore yields buffers in sender order, exactly
//!   like the mailbox's sorted drain.
//! * **Zero-copy staging survives.** `post` writes the pooled buffer
//!   straight to the socket and parks the `Vec` on a per-worker return
//!   stack; `reclaim_into` hands it back to the engine's
//!   [`BufferPool`] next round, so pool hit/miss traffic matches the
//!   in-process backend byte for byte. Receive buffers cycle through a
//!   private per-worker freelist refilled by `recycle`.
//! * **Reductions are a gather/broadcast round on worker 0** (the paper's
//!   master-less reductions need shared memory): workers send `REDUCE` to
//!   rank 0, rank 0 combines and broadcasts `RESULT`. One round-trip per
//!   reduction, counted in [`TransportStats::round_trips`].
//! * **Nothing blocks forever.** Every socket operation polls with a
//!   short kernel timeout against an explicit deadline and fails with a
//!   typed [`TransportError`] when it expires; a late peer within the
//!   connect deadline is tolerated, an absent one is an error, not a
//!   hang.

use crate::codec::{Codec, Reader};
use crate::metrics::TransportStats;
use crate::poll::{self, PollFd};
use crate::pool::BufferPool;
use crate::transport::{ExchangeTransport, TransportError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Frame tag: mesh handshake (payload = sender rank as `u32`).
pub const TAG_HELLO: u8 = b'H';
/// Frame tag: one posted exchange buffer.
pub const TAG_DATA: u8 = b'D';
/// Frame tag: empty round marker (no payload).
pub const TAG_SKIP: u8 = b'S';
/// Frame tag: reduction contribution (worker → rank 0).
pub const TAG_REDUCE: u8 = b'R';
/// Frame tag: combined reduction result (rank 0 → worker).
pub const TAG_RESULT: u8 = b'r';
/// Frame tag: coalesced super-frame (batched driver; see the module docs
/// for the payload layout and [`encode_batch`] / [`decode_batch`]).
pub const TAG_BATCH: u8 = b'B';

/// Reduction op: lane-wise sum.
const OP_SUM: u8 = 0;
/// Reduction op: lane 0 OR, lane 1 sum (the fused round epilogue).
const OP_FUSED: u8 = 1;

/// Kernel-level poll granularity for blocking socket calls. Deadlines are
/// enforced on top of this, so no operation can hang.
const POLL: Duration = Duration::from_millis(20);

/// Minimum capacity `recycle` always keeps on a receive buffer, so the
/// watermark trim never churns small steady-state buffers.
const READ_RETAIN_MIN: usize = 4096;

/// Upper bound on a sane frame payload; anything larger is treated as a
/// protocol violation instead of an attempted allocation.
const MAX_FRAME: usize = 1 << 30;

/// Frame header size on the wire: tag byte + `u32` length prefix.
pub const FRAME_HEADER: u64 = 5;

/// Default ceiling on a sub-frame payload eligible for coalescing; larger
/// frames stream out on their own so one bulk transfer never delays the
/// control frames queued behind it by a directory copy.
pub const DEFAULT_COALESCE_LIMIT: usize = 16 << 10;

/// Bytes of one sub-frame directory entry (`tag:u8 len:u32`).
const BATCH_ENTRY: usize = 5;

/// Sanity cap on sub-frames per super-frame. With `DEFAULT_COALESCE_LIMIT`
/// payloads this keeps a super-frame far below [`MAX_FRAME`]; a directory
/// claiming more is a protocol violation, not an allocation attempt.
const MAX_BATCH_FRAMES: usize = 4096;

/// Capacity retained on a fully drained send-staging buffer, so one giant
/// superstep does not pin giant staging capacity for the mesh's lifetime
/// (the send-side sibling of the receive watermark).
const STAGE_RETAIN: usize = 256 << 10;

/// Tuning knobs of the TCP transport.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// How long mesh setup may wait for peers to appear (covers workers
    /// that start late).
    pub connect_timeout: Duration,
    /// Deadline for any single exchange/reduction operation once the mesh
    /// is up.
    pub io_timeout: Duration,
    /// Run the non-blocking batched driver (pipelined sends, frame
    /// coalescing, readiness-loop progress) instead of the synchronous
    /// one-frame-per-write path. See the module docs.
    pub batched: bool,
    /// Largest payload eligible for coalescing into a super-frame
    /// (batched driver only).
    pub coalesce_limit: usize,
    /// Spin iterations an idle batched progress loop burns before
    /// sleeping in the readiness multiplexer. `None` picks the
    /// [`poll_spins`] heuristic (spin only when cores outnumber
    /// workers); `Some(0)` forces every idle wait straight to the
    /// kernel poll — the engine plumbs `Config::spin_budget` through
    /// here so one flag tunes both the barrier and the transport.
    pub spins: Option<u32>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            batched: false,
            coalesce_limit: DEFAULT_COALESCE_LIMIT,
            spins: None,
        }
    }
}

impl TcpOptions {
    /// Default options with the non-blocking batched driver enabled.
    pub fn batched() -> Self {
        TcpOptions {
            batched: true,
            ..TcpOptions::default()
        }
    }
}

/// Prepare a socket for transport use: disable Nagle and install the
/// short kernel poll timeouts that [`read_frame_into`] / [`write_frame`]
/// rely on for deadline enforcement.
pub fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(POLL))?;
    Ok(())
}

/// Put a mesh link into the batched driver's progress mode: permanently
/// non-blocking. The driver never blocks in a socket call — every idle
/// wait is one multiplexed [`poll(2)`](crate::poll) over the whole mesh
/// (see [`Pump::poll_wait`]), so the socket's own mode never toggles
/// again for the life of the link.
fn configure_batched(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(true)
}

fn io_err(peer: usize, during: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        peer,
        kind: e.kind(),
        during,
    }
}

/// Combine an I/O operation's result with the result of restoring the
/// socket's mode afterwards. The operation's error wins (it is the root
/// cause — a restore failure on an already-dead socket is noise); a
/// failed restore after a *successful* operation is itself fatal and
/// surfaces as its own typed error, never silently dropped — a socket
/// stuck in the wrong mode would degrade every later wait on it.
fn with_restored<T>(
    op: Result<T, TransportError>,
    restore: Result<(), TransportError>,
) -> Result<T, TransportError> {
    match (op, restore) {
        (Err(e), _) => Err(e),
        (Ok(_), Err(e)) => Err(e),
        (Ok(v), Ok(())) => Ok(v),
    }
}

fn is_poll_expiry(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) || e.kind() == std::io::ErrorKind::Interrupted
}

/// `read_exact` with a deadline: tolerates arbitrarily split reads,
/// returns [`TransportError::Truncated`] on EOF mid-buffer and
/// [`TransportError::Timeout`] past the deadline — never hangs.
fn read_exact_deadline(
    mut stream: &TcpStream,
    out: &mut [u8],
    deadline: Instant,
    peer: usize,
    during: &'static str,
) -> Result<(), TransportError> {
    let mut got = 0;
    while got < out.len() {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout { peer, during });
        }
        match stream.read(&mut out[got..]) {
            Ok(0) => {
                return Err(TransportError::Truncated {
                    peer,
                    expected: out.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if is_poll_expiry(&e) => continue,
            Err(e) => return Err(io_err(peer, during, e)),
        }
    }
    Ok(())
}

/// `write_all` with a deadline; never hangs.
fn write_all_deadline(
    mut stream: &TcpStream,
    data: &[u8],
    deadline: Instant,
    peer: usize,
    during: &'static str,
) -> Result<(), TransportError> {
    let mut sent = 0;
    while sent < data.len() {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout { peer, during });
        }
        match stream.write(&data[sent..]) {
            Ok(0) => {
                return Err(TransportError::Disconnected { peer, during });
            }
            Ok(n) => sent += n,
            Err(e) if is_poll_expiry(&e) => continue,
            Err(e) => return Err(io_err(peer, during, e)),
        }
    }
    Ok(())
}

/// Build a frame header, rejecting payloads the receiver would refuse —
/// the error belongs at the *send* site, and a length past `u32` must
/// never silently truncate the prefix and desync the wire.
fn frame_header(
    tag: u8,
    payload: &[u8],
    peer: usize,
) -> Result<[u8; FRAME_HEADER as usize], TransportError> {
    frame_header_for_len(tag, payload.len(), peer)
}

/// [`frame_header`] for a payload known only by length (the batched
/// driver sizes super-frames before concatenating their sub-frames).
fn frame_header_for_len(
    tag: u8,
    len: usize,
    peer: usize,
) -> Result<[u8; FRAME_HEADER as usize], TransportError> {
    if len > MAX_FRAME {
        return Err(TransportError::Protocol {
            peer,
            detail: format!("outgoing frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        });
    }
    let mut header = [0u8; FRAME_HEADER as usize];
    header[0] = tag;
    header[1..5].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(header)
}

/// Write one `tag + len + payload` frame. The stream must have been set
/// up with [`configure_stream`]; the deadline bounds the whole write.
pub fn write_frame(
    stream: &TcpStream,
    tag: u8,
    payload: &[u8],
    deadline: Instant,
    peer: usize,
) -> Result<(), TransportError> {
    let header = frame_header(tag, payload, peer)?;
    write_all_deadline(stream, &header, deadline, peer, "write frame header")?;
    write_all_deadline(stream, payload, deadline, peer, "write frame payload")
}

/// Read one frame into `payload` (cleared and resized), returning the
/// tag. Handles short and split reads; a peer that closes mid-frame
/// yields [`TransportError::Truncated`] / `Disconnected`, a deadline
/// expiry yields [`TransportError::Timeout`] — this call cannot hang.
pub fn read_frame_into(
    stream: &TcpStream,
    payload: &mut Vec<u8>,
    deadline: Instant,
    peer: usize,
) -> Result<u8, TransportError> {
    let mut header = [0u8; FRAME_HEADER as usize];
    read_exact_deadline(stream, &mut header, deadline, peer, "read frame header").map_err(|e| {
        // EOF on a frame boundary is a disconnect, not a truncation.
        match e {
            TransportError::Truncated { peer, got: 0, .. } => TransportError::Disconnected {
                peer,
                during: "read frame header",
            },
            other => other,
        }
    })?;
    let tag = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Protocol {
            peer,
            detail: format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
        });
    }
    payload.clear();
    payload.resize(len, 0);
    read_exact_deadline(stream, payload, deadline, peer, "read frame payload")?;
    Ok(tag)
}

/// Encode logical `(tag, payload)` frames into the payload of one `BATCH`
/// super-frame: `count:u32`, a `tag:u8 len:u32` directory entry per
/// sub-frame, then the concatenated payloads. The inverse of
/// [`decode_batch`]; the round trip is byte-exact (pinned by a proptest in
/// `tests/transport_conformance.rs`).
pub fn encode_batch(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        4 + frames.len() * BATCH_ENTRY + frames.iter().map(|(_, p)| p.len()).sum::<usize>(),
    );
    encode_batch_into(&mut out, frames.iter().map(|(t, p)| (*t, p.as_slice())));
    out
}

/// [`encode_batch`] appending into a caller-owned buffer (the batched
/// driver stages directly into its per-peer wire buffer). The iterator is
/// walked twice: once for the directory, once for the payloads.
fn encode_batch_into<'a>(out: &mut Vec<u8>, frames: impl Iterator<Item = (u8, &'a [u8])> + Clone) {
    let count = frames.clone().count();
    debug_assert!((1..=MAX_BATCH_FRAMES).contains(&count));
    (count as u32).encode(out);
    for (tag, payload) in frames.clone() {
        out.push(tag);
        (payload.len() as u32).encode(out);
    }
    for (_, payload) in frames {
        out.extend_from_slice(payload);
    }
}

/// Split a `BATCH` payload back into its logical `(tag, payload)` frames.
/// Every malformation — empty batch, oversized count, directory past the
/// payload, payload bytes left over or missing, a nested batch — is a
/// typed [`TransportError::Protocol`], never a bad allocation or a panic.
pub fn decode_batch(payload: &[u8], peer: usize) -> Result<Vec<(u8, Vec<u8>)>, TransportError> {
    let mut frames = Vec::new();
    let mut pool = Vec::new();
    split_batch_into(payload, peer, &mut pool, |tag, buf| frames.push((tag, buf)))?;
    Ok(frames)
}

/// The zero-copy-pooled core of [`decode_batch`]: validate the directory
/// and hand each sub-frame to `sink` in order, pulling payload buffers
/// from `read_pool`.
fn split_batch_into(
    payload: &[u8],
    peer: usize,
    read_pool: &mut Vec<Vec<u8>>,
    mut sink: impl FnMut(u8, Vec<u8>),
) -> Result<(), TransportError> {
    let malformed = |detail: String| TransportError::Protocol { peer, detail };
    if payload.len() < 4 {
        return Err(malformed(format!(
            "super-frame of {} bytes cannot hold a directory",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if count == 0 || count > MAX_BATCH_FRAMES {
        return Err(malformed(format!(
            "super-frame claims {count} sub-frames (valid: 1..={MAX_BATCH_FRAMES})"
        )));
    }
    let dir_end = 4 + count * BATCH_ENTRY;
    if dir_end > payload.len() {
        return Err(malformed(format!(
            "sub-frame directory ({count} entries) overruns the {}-byte super-frame",
            payload.len()
        )));
    }
    let mut at = dir_end;
    for i in 0..count {
        let entry = &payload[4 + i * BATCH_ENTRY..4 + (i + 1) * BATCH_ENTRY];
        let tag = entry[0];
        if tag == TAG_BATCH {
            return Err(malformed("nested super-frame".to_string()));
        }
        let len = u32::from_le_bytes(entry[1..5].try_into().unwrap()) as usize;
        let end = at.checked_add(len).filter(|&e| e <= payload.len());
        let Some(end) = end else {
            return Err(malformed(format!(
                "sub-frame {i} ({len} bytes) overruns the {}-byte super-frame",
                payload.len()
            )));
        };
        let mut buf = read_pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&payload[at..end]);
        sink(tag, buf);
        at = end;
    }
    if at != payload.len() {
        return Err(malformed(format!(
            "{} trailing bytes after the last sub-frame",
            payload.len() - at
        )));
    }
    Ok(())
}

/// Where a queued frame's payload `Vec` goes once its bytes are staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Return {
    /// An engine-posted exchange buffer: park it on `send_returns` so
    /// `reclaim_into` hands it back to the engine's [`BufferPool`] —
    /// exactly when the synchronous driver would.
    Engine,
    /// A transport-internal control payload: recycle it through the
    /// receive freelist so steady-state reductions allocate nothing.
    Pool,
}

/// One frame waiting in a peer's send queue (batched driver).
#[derive(Debug)]
struct QueuedFrame {
    tag: u8,
    payload: Vec<u8>,
    ret: Return,
    /// Held for coalescing: a small root-bound `DATA`/`SKIP` waits here
    /// until the round's `REDUCE` (any un-held frame) queues behind it,
    /// so the two go out as one super-frame. [`Tcp::try_flush`] releases
    /// holds when no reduction follows.
    held: bool,
}

/// Per-peer outgoing state of the batched driver: frames not yet encoded,
/// plus the staged wire bytes currently being pushed into the kernel.
#[derive(Debug, Default)]
struct SendQueue {
    frames: VecDeque<QueuedFrame>,
    /// Encoded wire bytes; `staged[cursor..]` is still owed to the kernel.
    staged: Vec<u8>,
    cursor: usize,
}

impl SendQueue {
    fn staged_pending(&self) -> usize {
        self.staged.len() - self.cursor
    }

    /// Nothing queued and nothing in flight.
    fn is_idle(&self) -> bool {
        self.frames.is_empty() && self.staged_pending() == 0
    }

    fn unhold(&mut self) {
        for f in &mut self.frames {
            f.held = false;
        }
    }

    /// Frames ready to stage: the un-held prefix (held frames are only
    /// ever queued before the un-held frame that releases them, so the
    /// queue is always an un-held prefix followed by a held suffix).
    fn ready(&self) -> usize {
        self.frames.iter().take_while(|f| !f.held).count()
    }
}

/// An incoming frame caught mid-flight by a drain-on-stall pass. The
/// drain never blocks on a frame's remainder (its sender may itself be
/// stalled draining); whatever is missing is picked up by the next drain
/// pass or finished by [`next_frame`] once this worker's writes are done.
#[derive(Debug, Default)]
struct PartialRead {
    header: [u8; FRAME_HEADER as usize],
    header_got: usize,
    buf: Vec<u8>,
    payload_got: usize,
}

impl PartialRead {
    fn tag(&self) -> u8 {
        self.header[0]
    }

    /// Validate the completed header and size the payload buffer.
    fn start_payload(
        &mut self,
        read_pool: &mut Vec<Vec<u8>>,
        peer: usize,
    ) -> Result<(), TransportError> {
        let len = u32::from_le_bytes(self.header[1..5].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Protocol {
                peer,
                detail: format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
            });
        }
        self.buf = read_pool.pop().unwrap_or_default();
        self.buf.clear();
        self.buf.resize(len, 0);
        self.payload_got = 0;
        Ok(())
    }
}

/// Consume everything currently available on `stream` without blocking,
/// advancing (or creating) the peer's [`PartialRead`] and queueing every
/// completed frame on `early`. Returns the bytes consumed.
fn drain_available(
    stream: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
) -> Result<usize, TransportError> {
    stream
        .set_nonblocking(true)
        .map_err(|e| io_err(peer, "drain set_nonblocking", e))?;
    let result = drain_available_nonblocking(stream, pending, early, read_pool, peer, false);
    // The restore runs unconditionally; `with_restored` keeps the drain's
    // own error as the root cause and refuses to swallow a failed
    // restore (which would leave the socket permanently non-blocking and
    // silently degrade every later synchronous read on it).
    let restored = stream
        .set_nonblocking(false)
        .map_err(|e| io_err(peer, "drain restore blocking", e));
    with_restored(result, restored)
}

/// Queue a completed frame on `early`, splitting super-frames into their
/// logical sub-frames when `split_batches` (batched driver) so everything
/// downstream of the drain sees only plain frames.
fn complete_frame(
    tag: u8,
    mut buf: Vec<u8>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
    split_batches: bool,
) -> Result<(), TransportError> {
    if split_batches && tag == TAG_BATCH {
        split_batch_into(&buf, peer, read_pool, |t, b| early.push_back((t, b)))?;
        buf.clear();
        read_pool.push(buf);
    } else {
        early.push_back((tag, buf));
    }
    Ok(())
}

fn drain_available_nonblocking(
    mut stream: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
    split_batches: bool,
) -> Result<usize, TransportError> {
    let mut consumed = 0;
    loop {
        let pr = pending.get_or_insert_with(PartialRead::default);
        let dst: &mut [u8] = if pr.header_got < pr.header.len() {
            &mut pr.header[pr.header_got..]
        } else {
            &mut pr.buf[pr.payload_got..]
        };
        if dst.is_empty() {
            // Zero-length payload frame completed on the header alone.
            let pr = pending.take().unwrap();
            complete_frame(pr.tag(), pr.buf, early, read_pool, peer, split_batches)?;
            continue;
        }
        match stream.read(dst) {
            Ok(0) => {
                return Err(TransportError::Disconnected {
                    peer,
                    during: "drain frame",
                })
            }
            Ok(n) => {
                consumed += n;
                if pr.header_got < pr.header.len() {
                    pr.header_got += n;
                    if pr.header_got == pr.header.len() {
                        pr.start_payload(read_pool, peer)?;
                    }
                } else {
                    pr.payload_got += n;
                }
                if pr.header_got == pr.header.len() && pr.payload_got == pr.buf.len() {
                    let pr = pending.take().unwrap();
                    complete_frame(pr.tag(), pr.buf, early, read_pool, peer, split_batches)?;
                }
            }
            Err(e) if is_poll_expiry(&e) => return Ok(consumed),
            Err(e) => return Err(io_err(peer, "drain frame", e)),
        }
    }
}

/// The next frame from `peer`: drained frames first, then the peer's
/// in-flight partial (finished blocking — safe here, because `next_frame`
/// is only called once this worker's own writes for the phase are
/// complete, so the sender cannot be waiting on us), then the socket.
fn next_frame(
    link: &TcpStream,
    pending: &mut Option<PartialRead>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    deadline: Instant,
    peer: usize,
) -> Result<(u8, Vec<u8>), TransportError> {
    if let Some(frame) = early.pop_front() {
        return Ok(frame);
    }
    if let Some(mut pr) = pending.take() {
        if pr.header_got < pr.header.len() {
            let at = pr.header_got;
            read_exact_deadline(
                link,
                &mut pr.header[at..],
                deadline,
                peer,
                "read frame header",
            )?;
            pr.header_got = pr.header.len();
            pr.start_payload(read_pool, peer)?;
        }
        let at = pr.payload_got;
        read_exact_deadline(
            link,
            &mut pr.buf[at..],
            deadline,
            peer,
            "read frame payload",
        )?;
        return Ok((pr.tag(), pr.buf));
    }
    let mut buf = read_pool.pop().unwrap_or_default();
    let tag = read_frame_into(link, &mut buf, deadline, peer)?;
    Ok((tag, buf))
}

/// Write one frame to `links[to]`, draining available inbound bytes from
/// every peer whenever the kernel send buffer stalls.
///
/// In an all-to-all bulk exchange every worker writes before it reads;
/// with frames larger than the kernel's socket buffering, plain blocking
/// writes would mutually stall until the io deadline. A stalled writer
/// therefore consumes whatever its peers have managed to send —
/// incrementally, via per-peer [`PartialRead`]s, never blocking on a
/// frame remainder whose sender may itself be stalled — so every pipe
/// keeps moving and the exchange always makes progress. The deadline
/// still backstops a genuinely dead peer with a typed error.
#[allow(clippy::too_many_arguments)]
fn write_frame_draining(
    links: &[Option<TcpStream>],
    pending: &mut [Option<PartialRead>],
    early: &mut [VecDeque<(u8, Vec<u8>)>],
    read_pool: &mut Vec<Vec<u8>>,
    worker: usize,
    to: usize,
    tag: u8,
    payload: &[u8],
    deadline: Instant,
) -> Result<(), TransportError> {
    let mut stream = links[to].as_ref().expect("mesh link missing");
    let header = frame_header(tag, payload, to)?;
    let total = header.len() + payload.len();
    let mut sent = 0;
    while sent < total {
        if Instant::now() >= deadline {
            return Err(TransportError::Timeout {
                peer: to,
                during: "write frame",
            });
        }
        let chunk = if sent < header.len() {
            &header[sent..]
        } else {
            &payload[sent - header.len()..]
        };
        match stream.write(chunk) {
            Ok(0) => {
                return Err(TransportError::Disconnected {
                    peer: to,
                    during: "write frame",
                })
            }
            Ok(n) => sent += n,
            Err(e) if is_poll_expiry(&e) => {
                let mut drained = 0;
                for (p, link) in links.iter().enumerate() {
                    if p == worker {
                        continue;
                    }
                    let Some(l) = link else { continue };
                    drained += drain_available(l, &mut pending[p], &mut early[p], read_pool, p)?;
                }
                if drained == 0 {
                    // Nothing moved anywhere: back off briefly instead of
                    // spinning against a full pipe.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => return Err(io_err(to, "write frame", e)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The batched driver's progress engine
// ---------------------------------------------------------------------
//
// Every operation of the batched driver reduces to the same readiness
// loop: stage queued frames into per-peer wire buffers (coalescing small
// runs into super-frames), push whatever the kernel will take, drain
// whatever the kernel has, and consume completed frames from the `early`
// queues — resuming partial writes and reads from per-peer cursors. The
// loop never blocks in a socket call; when a full pass moves nothing it
// spins briefly (cores to spare) and then sleeps in ONE multiplexed
// `poll(2)` over every mesh link — `POLLIN` interest on each peer still
// able to send, `POLLOUT` on each link with staged bytes the kernel
// refused — waking the instant any link can make progress, under the
// operation's deadline.
//
// Because the drain reads greedily, it can observe a peer's orderly
// close *after* that peer's last frame was already delivered (the
// synchronous driver, which reads exactly frame by frame, never can).
// A clean end-of-stream therefore only marks the peer closed; it
// becomes a typed `Disconnected` error at the consumer, if and when a
// frame is still owed from that peer.

/// Cap on one multiplexed readiness wait. Readiness itself wakes the
/// poll immediately; the cap only bounds how long a deadline check or a
/// closed-peer re-examination can be deferred when *nothing* happens.
const POLL_WAIT_CAP: Duration = Duration::from_millis(20);

/// Scheduler handoffs an idle progress loop offers before it sleeps in
/// the readiness multiplexer. On an oversubscribed mesh the bytes a
/// consumer is owed are usually one context switch away — the producer
/// thread is runnable, just not running — so `yield_now` hands it the
/// core and the next pump finds the frames without any kernel sleep,
/// its wake-up latency, or a pollfd-set build. Only when repeated
/// handoffs surface nothing (every runnable peer is itself waiting) is
/// parking the thread in [`poll(2)`](crate::poll) the right call.
const YIELD_BUDGET: u32 = 32;

/// Spin iterations before an idle progress loop falls back to the
/// multiplexed kernel wait — only when cores outnumber workers; an
/// oversubscribed machine must hand the CPU to the thread that holds
/// progress immediately (polling there starves the producer, exactly
/// like the [`crate::exchange::SpinBarrier`] heuristic).
fn poll_spins(workers: usize) -> u32 {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if cores > workers {
        256
    } else {
        0
    }
}

/// Idle counter of the batched progress loops: spin briefly (arrival is
/// usually imminent on a local mesh with spare cores), then sleep in the
/// readiness multiplexer via [`Pump::idle`].
struct Backoff {
    idle_rounds: u32,
}

impl Backoff {
    fn new() -> Self {
        Backoff { idle_rounds: 0 }
    }

    fn reset(&mut self) {
        self.idle_rounds = 0;
    }
}

/// Encode `q`'s ready frames into its wire-staging buffer (no-op while
/// staged bytes are still in flight). Runs of ≥ 2 coalescible frames
/// become one `BATCH` super-frame; everything else is framed plainly, in
/// queue order either way. Staged payload `Vec`s go home immediately —
/// engine buffers to `send_returns`, control payloads to the freelist.
fn stage_queue(
    q: &mut SendQueue,
    coalesce_limit: usize,
    send_returns: &mut Vec<Vec<u8>>,
    read_pool: &mut Vec<Vec<u8>>,
    stats: &mut TransportStats,
    peer: usize,
) -> Result<(), TransportError> {
    if q.staged_pending() > 0 {
        return Ok(());
    }
    let ready = q.ready();
    if ready == 0 {
        return Ok(());
    }
    q.staged.clear();
    q.cursor = 0;
    let mut staged = 0;
    while staged < ready {
        let run = q
            .frames
            .iter()
            .skip(staged)
            .take((ready - staged).min(MAX_BATCH_FRAMES))
            .take_while(|f| f.payload.len() <= coalesce_limit)
            .count();
        if run >= 2 {
            let sub = q.frames.iter().skip(staged).take(run);
            let body = 4 + run * BATCH_ENTRY + sub.clone().map(|f| f.payload.len()).sum::<usize>();
            let header = frame_header_for_len(TAG_BATCH, body, peer)?;
            q.staged.extend_from_slice(&header);
            encode_batch_into(&mut q.staged, sub.map(|f| (f.tag, f.payload.as_slice())));
            stats.frames += 1;
            stats.coalesced_frames += run as u64;
            stats.wire_bytes += FRAME_HEADER + body as u64;
            staged += run;
        } else {
            let f = &q.frames[staged];
            let header = frame_header(f.tag, &f.payload, peer)?;
            q.staged.extend_from_slice(&header);
            q.staged.extend_from_slice(&f.payload);
            stats.frames += 1;
            stats.wire_bytes += FRAME_HEADER + f.payload.len() as u64;
            staged += 1;
        }
    }
    for _ in 0..staged {
        let f = q.frames.pop_front().expect("staged frame count");
        match f.ret {
            Return::Engine => send_returns.push(f.payload),
            Return::Pool => {
                let mut p = f.payload;
                p.clear();
                read_pool.push(p);
            }
        }
    }
    Ok(())
}

/// The batched driver's per-operation view of one endpoint: every field
/// is a disjoint mutable borrow of the locked [`Endpoint`], so the
/// progress methods compose without fighting the borrow checker.
struct Pump<'a> {
    worker: usize,
    coalesce_limit: usize,
    /// Spin iterations before idle loops sleep in the readiness
    /// multiplexer (0 on oversubscribed machines; see [`poll_spins`]).
    spins: u32,
    links: &'a [Option<TcpStream>],
    send: &'a mut [SendQueue],
    recv: &'a mut [RecvBuf],
    large: &'a mut [Option<LargeFrame>],
    early: &'a mut [VecDeque<(u8, Vec<u8>)>],
    read_pool: &'a mut Vec<Vec<u8>>,
    send_returns: &'a mut Vec<Vec<u8>>,
    closed: &'a mut [bool],
    /// Reused pollfd set of [`Pump::poll_wait`] (one entry per live
    /// link with interest, rebuilt before every kernel wait).
    pollfds: &'a mut Vec<PollFd>,
    stats: &'a mut TransportStats,
}

impl Pump<'_> {
    /// No spin budget: every idle wait goes straight to the kernel
    /// multiplexer so the thread that holds progress gets the core.
    fn oversubscribed(&self) -> bool {
        self.spins == 0
    }
    /// Append one frame to `to`'s send queue. An un-held frame releases
    /// every hold queued before it (that is how the round's `REDUCE`
    /// pulls the held `DATA`/`SKIP` into its super-frame).
    fn enqueue(&mut self, to: usize, tag: u8, payload: Vec<u8>, ret: Return, held: bool) {
        let q = &mut self.send[to];
        if !held {
            q.unhold();
        }
        q.frames.push_back(QueuedFrame {
            tag,
            payload,
            ret,
            held,
        });
    }

    /// A cleared scratch buffer from the freelist.
    fn pool_buf(&mut self) -> Vec<u8> {
        let mut buf = self.read_pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a consumed control payload to the freelist.
    fn recycle(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.read_pool.push(buf);
    }

    /// True when some queue still holds bytes or frames to push.
    fn has_send_work(&self) -> bool {
        self.send
            .iter()
            .any(|q| q.staged_pending() > 0 || q.ready() > 0)
    }

    /// One non-blocking pass over every mesh link: push staged send
    /// bytes, re-stage as queues drain, and (when `drain_reads`) drain
    /// inbound bytes into the `early` queues — super-frames split back
    /// into their sub-frames. Returns the bytes moved in either
    /// direction — 0 means the kernel had nothing for us and took
    /// nothing from us. `post`/`sync` pump with `drain_reads = false`:
    /// they only need the sends pipelined, and skipping the speculative
    /// empty reads keeps the hot path's syscall count down.
    fn pump(&mut self, drain_reads: bool) -> Result<usize, TransportError> {
        let mut moved = 0;
        for (p, link) in self.links.iter().enumerate() {
            if p == self.worker {
                continue;
            }
            let Some(stream) = link else { continue };
            let q = &mut self.send[p];
            stage_queue(
                q,
                self.coalesce_limit,
                self.send_returns,
                self.read_pool,
                self.stats,
                p,
            )?;
            let mut stream_ref = stream;
            while q.staged_pending() > 0 {
                match stream_ref.write(&q.staged[q.cursor..]) {
                    Ok(0) => {
                        return Err(TransportError::Disconnected {
                            peer: p,
                            during: "write queued frames",
                        })
                    }
                    Ok(n) => {
                        q.cursor += n;
                        moved += n;
                        if q.staged_pending() == 0 {
                            q.staged.clear();
                            q.cursor = 0;
                            if q.staged.capacity() > STAGE_RETAIN {
                                q.staged.shrink_to(STAGE_RETAIN);
                            }
                            stage_queue(
                                q,
                                self.coalesce_limit,
                                self.send_returns,
                                self.read_pool,
                                self.stats,
                                p,
                            )?;
                            if q.is_idle() {
                                self.stats.flushes += 1;
                            }
                        }
                    }
                    Err(e) if is_poll_expiry(&e) => break,
                    Err(e) => return Err(io_err(p, "write queued frames", e)),
                }
            }
            if drain_reads && !self.closed[p] {
                match drain_link_nonblocking(
                    stream,
                    &mut self.recv[p],
                    &mut self.large[p],
                    &mut self.early[p],
                    self.read_pool,
                    p,
                ) {
                    Ok((n, eof)) => {
                        moved += n;
                        if eof {
                            self.closed[p] = true;
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(moved)
    }

    /// One idle step of a progress loop that made no progress: surface a
    /// peer that closed while still owing a frame, enforce the deadline
    /// (blaming the first peer still owed something), then back off in
    /// three escalating phases — a brief spin when cores are spare, a
    /// bounded run of scheduler handoffs ([`YIELD_BUDGET`]), and finally
    /// one multiplexed kernel sleep over every mesh link
    /// ([`Pump::poll_wait`]), so the thread wakes the instant *any*
    /// link can make progress instead of blocking toward one peer while
    /// bytes arrive from another.
    fn idle(
        &mut self,
        backoff: &mut Backoff,
        deadline: Instant,
        owed: &[bool],
        during: &'static str,
    ) -> Result<(), TransportError> {
        for (p, &is_owed) in owed.iter().enumerate() {
            if is_owed && self.closed[p] && self.early[p].is_empty() {
                return Err(TransportError::Disconnected { peer: p, during });
            }
        }
        if Instant::now() >= deadline {
            let peer = owed.iter().position(|&o| o).unwrap_or(usize::MAX);
            return Err(TransportError::Timeout { peer, during });
        }
        backoff.idle_rounds += 1;
        if backoff.idle_rounds <= self.spins {
            // Cores to spare: poll everything and spin — lowest latency.
            self.pump(true)?;
            std::hint::spin_loop();
            return Ok(());
        }
        if backoff.idle_rounds <= self.spins.saturating_add(YIELD_BUDGET) {
            // Offer the core to a runnable peer, then pump to pick up
            // whatever the handoff produced (the consumer loops above
            // only re-pump when they have send work of their own).
            std::thread::yield_now();
            self.pump(true)?;
            return Ok(());
        }
        self.poll_wait(deadline)
    }

    /// One multiplexed readiness wait over the whole mesh: build a
    /// pollfd set with `POLLIN` interest on every live (not yet closed)
    /// link and `POLLOUT` interest on every link whose staged bytes the
    /// kernel refused, sleep in a single [`poll(2)`](crate::poll) until
    /// something is ready (capped by the remaining deadline and
    /// [`POLL_WAIT_CAP`]), then run one full progress pass over the
    /// wake-up.
    ///
    /// Accounting: the wait is charged to `send_stall_us` when unsent
    /// bytes were among what we waited on, to `recv_stall_us` when the
    /// wait was purely for inbound frames; every kernel wait counts one
    /// `poll_waits`, and a wake-up whose progress pass moved zero bytes
    /// counts one `wakeups_spurious`.
    fn poll_wait(&mut self, deadline: Instant) -> Result<(), TransportError> {
        self.pollfds.clear();
        let mut want_out = false;
        for (p, link) in self.links.iter().enumerate() {
            if p == self.worker {
                continue;
            }
            let Some(stream) = link else { continue };
            let mut events = 0i16;
            if !self.closed[p] {
                events |= poll::POLLIN;
            }
            if self.send[p].staged_pending() > 0 {
                events |= poll::POLLOUT;
                want_out = true;
            }
            if events != 0 {
                self.pollfds.push(PollFd::new(stream.as_raw_fd(), events));
            }
        }
        if self.pollfds.is_empty() {
            // Every peer closed and nothing queued: no readiness will
            // ever arrive; yield so the consumer loop re-examines the
            // world (and errors out on whatever it is still owed).
            std::thread::yield_now();
            return Ok(());
        }
        let timeout = deadline
            .saturating_duration_since(Instant::now())
            .min(POLL_WAIT_CAP);
        let before = Instant::now();
        let ready = poll::poll(self.pollfds, timeout)
            .map_err(|e| io_err(usize::MAX, "poll mesh readiness", e))?;
        let waited = before.elapsed().as_micros() as u64;
        // Feed the tracing probe, if the driving worker installed one on
        // this thread; one thread-local check otherwise — negligible
        // next to the kernel wait that just happened.
        crate::trace::note_poll_wait(before, waited);
        self.stats.poll_waits += 1;
        if want_out {
            self.stats.send_stall_us += waited;
        } else {
            self.stats.recv_stall_us += waited;
        }
        if ready == 0 {
            return Ok(()); // wait slice expired; the caller re-checks
        }
        // Something is ready: one full progress pass picks it up —
        // whichever links woke us, and anything else that became ready
        // meanwhile. A wake-up that moves nothing (e.g. a peer's orderly
        // close, or readiness consumed by a mode change) is recorded as
        // spurious rather than hiding in the next wait.
        let moved = self.pump(true)?;
        if moved == 0 {
            self.stats.wakeups_spurious += 1;
        }
        Ok(())
    }

    /// Drive the pump until every send queue is empty and on the wire
    /// (held frames must have been released first). Used by the
    /// reduction broadcast — peers are blocked on the `RESULT`, so it
    /// must not linger staged — and by [`Tcp::try_flush`].
    fn drive_empty(
        &mut self,
        deadline: Instant,
        during: &'static str,
    ) -> Result<(), TransportError> {
        let mut backoff = Backoff::new();
        let no_owed: &[bool] = &[];
        while !self.send.iter().all(SendQueue::is_idle) {
            let moved = self.pump(true)?;
            if moved > 0 {
                backoff.reset();
                continue;
            }
            if Instant::now() >= deadline {
                let peer = self
                    .send
                    .iter()
                    .position(|q| !q.is_idle())
                    .unwrap_or(usize::MAX);
                return Err(TransportError::Timeout { peer, during });
            }
            self.idle(&mut backoff, deadline, no_owed, during)?;
        }
        Ok(())
    }
}

/// Writable chunk kept free at the tail of a receive staging buffer: one
/// `read` syscall can pull this much, which on small-frame rounds means
/// several complete frames per syscall.
const RECV_CHUNK: usize = 32 << 10;

/// Frames with payloads beyond this bypass staging: the remainder is
/// read straight into the frame's own buffer, so bulk transfers pay no
/// staging copy.
const RECV_DIRECT: usize = 16 << 10;

/// Per-peer buffered receive state of the batched driver. `buf[start..
/// end]` holds bytes not yet parsed into frames.
#[derive(Debug, Default)]
struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl RecvBuf {
    fn pending(&self) -> usize {
        self.end - self.start
    }
}

/// A frame whose payload outgrew the staging buffer ([`RECV_DIRECT`]):
/// its remainder reads directly into `buf`.
#[derive(Debug)]
struct LargeFrame {
    tag: u8,
    buf: Vec<u8>,
    got: usize,
}

/// One buffered read attempt from `peer` (batched driver): a single
/// `read` syscall typically delivers several complete frames, each of
/// which — super-frames split into their sub-frames — lands on `early`.
/// Returns `(bytes, clean_eof)`; a clean end-of-stream is not an error
/// until someone is still owed a frame from this peer. Works on a
/// non-blocking stream (one poll) and on a blocking one (one bounded
/// kernel wait).
fn recv_step(
    mut stream: &TcpStream,
    rb: &mut RecvBuf,
    large: &mut Option<LargeFrame>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
) -> Result<(usize, bool), TransportError> {
    // Direct path: a large frame's remainder goes straight into its own
    // buffer — no staging copy, full-chunk reads.
    if let Some(lf) = large.as_mut() {
        let n = match stream.read(&mut lf.buf[lf.got..]) {
            Ok(0) => {
                return Err(TransportError::Truncated {
                    peer,
                    expected: lf.buf.len(),
                    got: lf.got,
                })
            }
            Ok(n) => n,
            Err(e) if is_poll_expiry(&e) => return Ok((0, false)),
            Err(e) => return Err(io_err(peer, "drain frame", e)),
        };
        lf.got += n;
        if lf.got == lf.buf.len() {
            let lf = large.take().unwrap();
            complete_frame(lf.tag, lf.buf, early, read_pool, peer, true)?;
        }
        return Ok((n, false));
    }
    // Make room: compact parsed-off bytes, keep a full chunk writable.
    if rb.start > 0 && (rb.buf.len() - rb.end < RECV_CHUNK) {
        rb.buf.copy_within(rb.start..rb.end, 0);
        rb.end -= rb.start;
        rb.start = 0;
    }
    if rb.buf.len() < rb.end + RECV_CHUNK {
        rb.buf.resize(rb.end + RECV_CHUNK, 0);
    }
    let n = match stream.read(&mut rb.buf[rb.end..]) {
        Ok(0) => {
            return if rb.pending() == 0 {
                Ok((0, true))
            } else {
                // Report what the in-flight frame still owed: its full
                // length once the header is staged, else the header.
                let expected = if rb.pending() >= FRAME_HEADER as usize {
                    let len =
                        u32::from_le_bytes(rb.buf[rb.start + 1..rb.start + 5].try_into().unwrap())
                            as usize;
                    FRAME_HEADER as usize + len
                } else {
                    FRAME_HEADER as usize
                };
                Err(TransportError::Truncated {
                    peer,
                    expected,
                    got: rb.pending(),
                })
            };
        }
        Ok(n) => n,
        Err(e) if is_poll_expiry(&e) => return Ok((0, false)),
        Err(e) => return Err(io_err(peer, "drain frame", e)),
    };
    rb.end += n;
    // Parse every complete frame out of the staged bytes.
    while rb.pending() >= FRAME_HEADER as usize {
        let at = rb.start;
        let tag = rb.buf[at];
        let len = u32::from_le_bytes(rb.buf[at + 1..at + 5].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Protocol {
                peer,
                detail: format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
            });
        }
        let body = at + FRAME_HEADER as usize;
        if len > RECV_DIRECT {
            // Switch this frame to the direct path: take what is staged,
            // read the rest into the frame's own buffer.
            let have = (rb.end - body).min(len);
            let mut buf = read_pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(len, 0);
            buf[..have].copy_from_slice(&rb.buf[body..body + have]);
            rb.start = body + have;
            if have == len {
                complete_frame(tag, buf, early, read_pool, peer, true)?;
                continue;
            }
            *large = Some(LargeFrame {
                tag,
                buf,
                got: have,
            });
            break;
        }
        if rb.pending() < FRAME_HEADER as usize + len {
            break; // partial frame; the next read completes it
        }
        let mut buf = read_pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&rb.buf[body..body + len]);
        rb.start = body + len;
        complete_frame(tag, buf, early, read_pool, peer, true)?;
    }
    if rb.start == rb.end {
        rb.start = 0;
        rb.end = 0;
        // One giant staged round must not pin staging capacity forever.
        if rb.buf.len() > 2 * RECV_CHUNK {
            rb.buf.truncate(RECV_CHUNK);
            rb.buf.shrink_to(RECV_CHUNK);
        }
    }
    Ok((n, false))
}

/// Drain everything currently available from one link (batched driver):
/// repeated [`recv_step`]s until the kernel has nothing more.
#[allow(clippy::too_many_arguments)]
fn drain_link_nonblocking(
    stream: &TcpStream,
    rb: &mut RecvBuf,
    large: &mut Option<LargeFrame>,
    early: &mut VecDeque<(u8, Vec<u8>)>,
    read_pool: &mut Vec<Vec<u8>>,
    peer: usize,
) -> Result<(usize, bool), TransportError> {
    let mut consumed = 0;
    loop {
        let (n, eof) = recv_step(stream, rb, large, early, read_pool, peer)?;
        consumed += n;
        if eof {
            return Ok((consumed, true));
        }
        if n == 0 {
            return Ok((consumed, false));
        }
    }
}
/// Per-worker endpoint state. Each worker locks only its own endpoint, so
/// the mutexes are uncontended; they exist to make the shared [`Tcp`]
/// object `Sync`.
#[derive(Debug, Default)]
struct Endpoint {
    /// Socket to each peer (`None` for self and until the mesh is up).
    links: Vec<Option<TcpStream>>,
    /// Buffer posted to self this round (loop-back skips the wire).
    self_slot: Option<Vec<u8>>,
    /// Peers already posted to this round (double-post guard + SKIP set).
    posted: Vec<bool>,
    /// Private freelist of receive buffers, refilled by `recycle`.
    read_pool: Vec<Vec<u8>>,
    /// Decaying high-water mark of received frame sizes: bounds how much
    /// capacity `recycle` keeps on the receive freelist, so one giant
    /// superstep cannot pin giant receive buffers for the transport's
    /// lifetime (the receive-side sibling of `BufferPool::end_round`).
    read_watermark: usize,
    /// Per-peer frames read ahead of schedule by a drain-on-stall pass,
    /// consumed (in arrival order) before the socket is touched again.
    early: Vec<VecDeque<(u8, Vec<u8>)>>,
    /// Per-peer frame fragments caught mid-flight by a drain pass.
    pending: Vec<Option<PartialRead>>,
    /// Per-peer send queues of the batched driver (empty when the
    /// synchronous driver runs — it writes frames through directly).
    send: Vec<SendQueue>,
    /// Per-peer buffered receive staging of the batched driver.
    recv: Vec<RecvBuf>,
    /// Per-peer direct-path large frames of the batched driver.
    large: Vec<Option<LargeFrame>>,
    /// Peers whose stream hit a clean end-of-stream during a batched
    /// drain; an error only once a frame is still owed from them.
    closed: Vec<bool>,
    /// Posted buffers awaiting `reclaim_into` (their bytes are already on
    /// the wire; the `Vec`s go home to the engine's pool).
    send_returns: Vec<Vec<u8>>,
    /// Reused pollfd scratch of the readiness multiplexer (batched
    /// driver; see [`Pump::poll_wait`]).
    pollfds: Vec<PollFd>,
    /// Scratch for reduction payload encoding.
    scratch: Vec<u8>,
    /// Per-peer "still owes this round a frame" scratch, reused by the
    /// batched `take_all_into` and reduction gathers.
    owed: Vec<bool>,
    /// This worker's share of the wire counters.
    stats: TransportStats,
}

/// The endpoint fields a batched operation keeps for itself, next to the
/// [`Pump`] that owns the progress machinery.
struct OpState<'a> {
    self_slot: &'a mut Option<Vec<u8>>,
    posted: &'a mut Vec<bool>,
    owed: &'a mut Vec<bool>,
    read_watermark: &'a mut usize,
}

impl Endpoint {
    /// Split this endpoint into the batched driver's progress context and
    /// the op-local leftovers — disjoint borrows, usable side by side.
    fn split(
        &mut self,
        worker: usize,
        coalesce_limit: usize,
        spins: u32,
    ) -> (Pump<'_>, OpState<'_>) {
        let Endpoint {
            links,
            self_slot,
            posted,
            read_pool,
            read_watermark,
            early,
            send,
            recv,
            large,
            closed,
            send_returns,
            pollfds,
            owed,
            stats,
            ..
        } = self;
        (
            Pump {
                worker,
                coalesce_limit,
                spins,
                links,
                send,
                recv,
                large,
                early,
                read_pool,
                send_returns,
                closed,
                pollfds,
                stats,
            },
            OpState {
                self_slot,
                posted,
                owed,
                read_watermark,
            },
        )
    }
}

/// The TCP exchange transport: a full mesh of sockets between `workers`
/// workers. See the module docs for the protocol.
///
/// Two deployment shapes share this type:
///
/// * [`Tcp::loopback`] — every worker lives in this process (one thread
///   each) and the mesh runs over loopback sockets. This is the simulated
///   cluster used by `Config::tcp`.
/// * [`Tcp::mesh`] — this process owns exactly **one** rank of a
///   multi-process deployment; the peer addresses come from an
///   out-of-process rendezvous (`pc_dist::bootstrap`) and may live on
///   other hosts. Only the local rank's endpoint may be driven.
#[derive(Debug)]
pub struct Tcp {
    workers: usize,
    /// Spin iterations before batched idle loops block in the kernel
    /// (computed once from cores vs workers; see [`poll_spins`]).
    spins: u32,
    /// `Some(rank)` when this object is one rank of a multi-process mesh
    /// (only that endpoint may be driven); `None` for the in-process
    /// loopback mesh where every worker is local.
    local: Option<usize>,
    opts: TcpOptions,
    addrs: Vec<SocketAddr>,
    /// Listener for each rank, taken by its worker during mesh setup.
    listeners: Vec<Mutex<Option<TcpListener>>>,
    endpoints: Vec<Mutex<Endpoint>>,
    /// The first [`TransportError`] that made an infallible trait method
    /// panic. A supervisor that catches the worker's unwind reads this
    /// through [`Tcp::take_fault`] to decide whether the failure is a
    /// recoverable data-plane fault (peer died → rebuild the mesh and
    /// restore a checkpoint) or a programming error it must propagate.
    fault: Mutex<Option<TransportError>>,
}

impl Tcp {
    /// Bind a loopback mesh for `workers` workers with default options.
    ///
    /// Listeners are bound immediately (so peer addresses are known and
    /// connections queue in the kernel even before a worker thread
    /// starts); the sockets are connected lazily on each worker's first
    /// transport operation.
    pub fn loopback(workers: usize) -> Result<Self, TransportError> {
        Tcp::loopback_with(workers, TcpOptions::default())
    }

    /// [`Tcp::loopback`] with explicit timeouts.
    pub fn loopback_with(workers: usize, opts: TcpOptions) -> Result<Self, TransportError> {
        assert!(workers > 0);
        let mut addrs = Vec::with_capacity(workers);
        let mut listeners = Vec::with_capacity(workers);
        for rank in 0..workers {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).map_err(|e| TransportError::Connect {
                    peer: rank,
                    detail: format!("bind 127.0.0.1:0: {e}"),
                })?;
            addrs.push(listener.local_addr().map_err(|e| TransportError::Connect {
                peer: rank,
                detail: format!("local_addr: {e}"),
            })?);
            listeners.push(Mutex::new(Some(listener)));
        }
        let endpoints = Tcp::fresh_endpoints(workers);
        Ok(Tcp {
            workers,
            spins: opts.spins.unwrap_or_else(|| poll_spins(workers)),
            local: None,
            opts,
            addrs,
            listeners,
            endpoints,
            fault: Mutex::new(None),
        })
    }

    /// Join a multi-process mesh as `rank`.
    ///
    /// `addrs` is the full peer table (one data-plane address per rank, as
    /// exchanged by the bootstrap rendezvous) and `listener` is this
    /// process's already-bound data listener — it must be the socket whose
    /// address was published as `addrs[rank]`, so peers connecting to that
    /// address reach it. The mesh links are established lazily on the
    /// first transport operation, exactly like the loopback shape: connect
    /// to every lower rank, accept (and `HELLO`-identify) every higher
    /// one.
    ///
    /// Only endpoint `rank` may be driven through the returned object;
    /// driving any other worker panics, because those ranks live in other
    /// processes.
    pub fn mesh(
        rank: usize,
        addrs: Vec<SocketAddr>,
        listener: TcpListener,
        opts: TcpOptions,
    ) -> Result<Self, TransportError> {
        let workers = addrs.len();
        assert!(rank < workers, "rank {rank} out of range 0..{workers}");
        let mut listeners: Vec<Mutex<Option<TcpListener>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        *listeners[rank].get_mut() = Some(listener);
        Ok(Tcp {
            workers,
            spins: opts.spins.unwrap_or_else(|| poll_spins(workers)),
            local: Some(rank),
            opts,
            addrs,
            listeners,
            endpoints: Tcp::fresh_endpoints(workers),
            fault: Mutex::new(None),
        })
    }

    fn fresh_endpoints(workers: usize) -> Vec<Mutex<Endpoint>> {
        (0..workers)
            .map(|_| {
                Mutex::new(Endpoint {
                    links: (0..workers).map(|_| None).collect(),
                    posted: vec![false; workers],
                    early: (0..workers).map(|_| VecDeque::new()).collect(),
                    pending: (0..workers).map(|_| None).collect(),
                    send: (0..workers).map(|_| SendQueue::default()).collect(),
                    recv: (0..workers).map(|_| RecvBuf::default()).collect(),
                    large: (0..workers).map(|_| None).collect(),
                    closed: vec![false; workers],
                    owed: vec![false; workers],
                    ..Endpoint::default()
                })
            })
            .collect()
    }

    /// The data-plane addresses, rank by rank (bound listeners for the
    /// loopback shape, the rendezvous peer table for the mesh shape).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The rank this object drives in a multi-process mesh (`None` for
    /// the all-local loopback shape).
    pub fn local_rank(&self) -> Option<usize> {
        self.local
    }

    /// Panic unless `w` is drivable from this process.
    fn assert_local(&self, w: usize) {
        if let Some(rank) = self.local {
            assert_eq!(
                rank, w,
                "worker {w} driven through the mesh endpoint of rank {rank}; \
                 that worker lives in another process"
            );
        }
    }

    /// Capacity currently parked on `worker`'s receive freelist —
    /// observability for the watermark trim (see `Endpoint::read_watermark`).
    pub fn receive_pool_bytes(&self, worker: usize) -> usize {
        self.endpoints[worker]
            .lock()
            .read_pool
            .iter()
            .map(Vec::capacity)
            .sum()
    }

    /// Establish worker `w`'s mesh links: connect to every lower rank,
    /// accept from every higher rank (identified by their `HELLO`).
    fn ensure_connected(&self, w: usize, ep: &mut Endpoint) -> Result<(), TransportError> {
        if (0..self.workers).all(|p| p == w || ep.links[p].is_some()) {
            return Ok(());
        }
        let deadline = Instant::now() + self.opts.connect_timeout;
        for p in 0..w {
            if ep.links[p].is_some() {
                continue;
            }
            let stream = loop {
                match TcpStream::connect(self.addrs[p]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Connect {
                                peer: p,
                                detail: format!("connect {}: {e}", self.addrs[p]),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            configure_stream(&stream).map_err(|e| io_err(p, "configure stream", e))?;
            let mut hello = Vec::with_capacity(4);
            (w as u32).encode(&mut hello);
            write_frame(&stream, TAG_HELLO, &hello, deadline, p)?;
            ep.stats.frames += 1;
            ep.stats.wire_bytes += FRAME_HEADER + hello.len() as u64;
            if self.opts.batched {
                configure_batched(&stream).map_err(|e| io_err(p, "mesh mode", e))?;
            }
            ep.links[p] = Some(stream);
        }
        let expect_higher = (w + 1..self.workers).any(|p| ep.links[p].is_none());
        if expect_higher {
            // Borrow the listener; it is only released (closed) once the
            // mesh is complete, so a failed setup can be retried.
            let mut slot = self.listeners[w].lock();
            let listener = slot.as_ref().ok_or_else(|| TransportError::Connect {
                peer: w,
                detail: "listener already released but mesh incomplete".to_string(),
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|e| io_err(w, "listener set_nonblocking", e))?;
            let mut scratch = Vec::new();
            while (w + 1..self.workers).any(|p| ep.links[p].is_none()) {
                if Instant::now() >= deadline {
                    let missing = (w + 1..self.workers)
                        .find(|&p| ep.links[p].is_none())
                        .unwrap();
                    return Err(TransportError::Timeout {
                        peer: missing,
                        during: "accept mesh connection",
                    });
                }
                let stream = match listener.accept() {
                    Ok((s, _)) => s,
                    Err(e) if is_poll_expiry(&e) => {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    Err(e) => return Err(io_err(w, "accept", e)),
                };
                stream
                    .set_nonblocking(false)
                    .map_err(|e| io_err(w, "accepted set_nonblocking", e))?;
                configure_stream(&stream).map_err(|e| io_err(w, "configure stream", e))?;
                let tag = read_frame_into(&stream, &mut scratch, deadline, usize::MAX)?;
                if tag != TAG_HELLO || scratch.len() != 4 {
                    return Err(TransportError::Protocol {
                        peer: usize::MAX,
                        detail: format!(
                            "expected HELLO, got tag {tag:#04x} ({} bytes)",
                            scratch.len()
                        ),
                    });
                }
                let peer = u32::from_le_bytes(scratch[..4].try_into().unwrap()) as usize;
                if peer <= w || peer >= self.workers || ep.links[peer].is_some() {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: "HELLO from an unexpected or duplicate rank".to_string(),
                    });
                }
                if self.opts.batched {
                    configure_batched(&stream).map_err(|e| io_err(peer, "mesh mode", e))?;
                }
                ep.links[peer] = Some(stream);
            }
            // All higher ranks connected: the listener's job is done.
            *slot = None;
        }
        Ok(())
    }

    /// Run `f` on worker `w`'s endpoint with the mesh guaranteed up.
    fn with_endpoint<R>(
        &self,
        w: usize,
        f: impl FnOnce(&mut Endpoint) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        self.assert_local(w);
        let mut ep = self.endpoints[w].lock();
        self.ensure_connected(w, &mut ep)?;
        f(&mut ep)
    }

    fn io_deadline(&self) -> Instant {
        Instant::now() + self.opts.io_timeout
    }

    /// True when a batched frame from `from` to `to` should wait for the
    /// round's reduction contribution: small `DATA`/`SKIP` frames toward
    /// the reduction root coalesce with the `REDUCE` that every round
    /// sends there anyway, halving the root-bound frame count.
    fn hold_for_reduce(&self, from: usize, to: usize, len: usize) -> bool {
        to == 0 && from != 0 && len <= self.opts.coalesce_limit
    }

    /// Fallible [`ExchangeTransport::post`].
    pub fn try_post(&self, from: usize, to: usize, data: Vec<u8>) -> Result<(), TransportError> {
        if self.opts.batched {
            return self.try_post_batched(from, to, data);
        }
        let deadline = self.io_deadline();
        self.with_endpoint(from, |ep| {
            assert!(
                !ep.posted[to],
                "transport slot ({from},{to}) posted twice in one round"
            );
            ep.posted[to] = true;
            if to == from {
                ep.self_slot = Some(data);
                return Ok(());
            }
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                send_returns,
                stats,
                ..
            } = ep;
            write_frame_draining(
                links, pending, early, read_pool, from, to, TAG_DATA, &data, deadline,
            )?;
            stats.frames += 1;
            stats.wire_bytes += FRAME_HEADER + data.len() as u64;
            send_returns.push(data);
            Ok(())
        })
    }

    /// Batched [`Tcp::try_post`]: enqueue and immediately drive socket
    /// progress, so serializing the next destination overlaps this one's
    /// wire transfer instead of stalling on `write_all`.
    fn try_post_batched(
        &self,
        from: usize,
        to: usize,
        data: Vec<u8>,
    ) -> Result<(), TransportError> {
        self.with_endpoint(from, |ep| {
            assert!(
                !ep.posted[to],
                "transport slot ({from},{to}) posted twice in one round"
            );
            ep.posted[to] = true;
            if to == from {
                ep.self_slot = Some(data);
                return Ok(());
            }
            // Oversize fails at the post site, exactly like the
            // synchronous driver.
            frame_header(TAG_DATA, &data, to)?;
            let held = self.hold_for_reduce(from, to, data.len());
            let (mut cx, _) = ep.split(from, self.opts.coalesce_limit, self.spins);
            cx.enqueue(to, TAG_DATA, data, Return::Engine, held);
            cx.pump(false)?;
            Ok(())
        })
    }

    /// Fallible [`ExchangeTransport::sync`]: emit `SKIP` markers to every
    /// peer not posted to, completing the round on all receivers.
    pub fn try_sync(&self, worker: usize) -> Result<(), TransportError> {
        if self.opts.batched {
            return self.try_sync_batched(worker);
        }
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                posted,
                stats,
                ..
            } = ep;
            for (p, &was_posted) in posted.iter().enumerate() {
                if p == worker || was_posted {
                    continue;
                }
                write_frame_draining(
                    links,
                    pending,
                    early,
                    read_pool,
                    worker,
                    p,
                    TAG_SKIP,
                    &[],
                    deadline,
                )?;
                stats.frames += 1;
                stats.wire_bytes += FRAME_HEADER;
            }
            posted.fill(false);
            Ok(())
        })
    }

    /// Batched [`Tcp::try_sync`]: queue the round's `SKIP` markers and
    /// drive whatever progress the kernel will take right now — the
    /// blocking "drive until quiesced" happens in `take_all_into`, where
    /// the round's frames are actually needed.
    fn try_sync_batched(&self, worker: usize) -> Result<(), TransportError> {
        self.with_endpoint(worker, |ep| {
            let (mut cx, op) = ep.split(worker, self.opts.coalesce_limit, self.spins);
            for (p, was_posted) in op.posted.iter_mut().enumerate() {
                let skip = p != worker && !*was_posted;
                *was_posted = false;
                if skip {
                    let held = self.hold_for_reduce(worker, p, 0);
                    cx.enqueue(p, TAG_SKIP, Vec::new(), Return::Pool, held);
                }
            }
            cx.pump(false)?;
            Ok(())
        })
    }

    /// Batched [`Tcp::try_take_all_into`]: the round's "drive until
    /// quiesced" loop — push queued sends and collect exactly one
    /// `DATA`/`SKIP` per peer, in whatever order peers deliver, then
    /// emit in ascending rank order like every other backend.
    fn try_take_all_into_batched(
        &self,
        worker: usize,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) -> Result<(), TransportError> {
        let deadline = self.io_deadline();
        out.clear();
        self.with_endpoint(worker, |ep| {
            let (mut cx, op) = ep.split(worker, self.opts.coalesce_limit, self.spins);
            let workers = cx.links.len();
            let owed = op.owed;
            let mut outstanding = 0;
            for (p, slot) in owed.iter_mut().enumerate() {
                *slot = p != worker;
                outstanding += *slot as usize;
            }
            if let Some(buf) = op.self_slot.take() {
                out.push((worker, buf));
            }
            let mut round_max = 0usize;
            let mut backoff = Backoff::new();
            cx.pump(true)?;
            while outstanding > 0 {
                let mut consumed = false;
                #[allow(clippy::needless_range_loop)] // disjoint owed/cx index access
                for p in 0..workers {
                    if !owed[p] {
                        continue;
                    }
                    let Some((tag, buf)) = cx.early[p].pop_front() else {
                        continue;
                    };
                    match tag {
                        TAG_DATA => {
                            round_max = round_max.max(buf.len());
                            out.push((p, buf));
                        }
                        TAG_SKIP => cx.recycle(buf),
                        other => {
                            return Err(TransportError::Protocol {
                                peer: p,
                                detail: format!("expected DATA/SKIP, got tag {other:#04x}"),
                            })
                        }
                    }
                    owed[p] = false;
                    outstanding -= 1;
                    consumed = true;
                }
                if outstanding == 0 {
                    break;
                }
                if consumed {
                    backoff.reset();
                    continue;
                }
                if cx.has_send_work() {
                    let moved = cx.pump(true)?;
                    if moved > 0 {
                        backoff.reset();
                        continue;
                    }
                }
                cx.idle(&mut backoff, deadline, owed, "take_all_into")?;
            }
            out.sort_unstable_by_key(|&(sender, _)| sender);
            *op.read_watermark = round_max.max(*op.read_watermark - *op.read_watermark / 4);
            Ok(())
        })
    }

    /// Batched generic reduction: same gather/broadcast protocol as the
    /// synchronous driver, driven by the readiness loop. The worker's
    /// `REDUCE` releases any held root-bound frame and coalesces with it.
    fn try_reduce_op_batched(
        &self,
        worker: usize,
        op: u8,
        values: &[u64],
    ) -> Result<Vec<u64>, TransportError> {
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let lanes = values.len();
            let (mut cx, opstate) = ep.split(worker, self.opts.coalesce_limit, self.spins);
            let workers = cx.links.len();
            let owed = opstate.owed;
            if worker == 0 {
                let mut acc = values.to_vec();
                let mut outstanding = 0;
                for (p, slot) in owed.iter_mut().enumerate() {
                    *slot = p != 0;
                    outstanding += *slot as usize;
                }
                // A previous round's RESULT may still be held for
                // coalescing (channel-free supersteps have no post/sync
                // to release it); peers cannot send this round's REDUCE
                // before they see it, so push it now.
                for q in cx.send.iter_mut() {
                    q.unhold();
                }
                let mut backoff = Backoff::new();
                cx.pump(true)?;
                while outstanding > 0 {
                    let mut consumed = false;
                    #[allow(clippy::needless_range_loop)] // disjoint owed/cx index access
                    for p in 1..workers {
                        if !owed[p] {
                            continue;
                        }
                        let Some((tag, payload)) = cx.early[p].pop_front() else {
                            continue;
                        };
                        if tag != TAG_REDUCE {
                            return Err(TransportError::Protocol {
                                peer: p,
                                detail: format!("expected REDUCE, got tag {tag:#04x}"),
                            });
                        }
                        let mut r = Reader::new(&payload);
                        let peer_op: u8 = r.get();
                        let peer_lanes: u32 = r.get();
                        if peer_op != op || peer_lanes as usize != lanes {
                            return Err(TransportError::Protocol {
                                peer: p,
                                detail: format!(
                                    "reduction shape mismatch: op {peer_op}/{op}, \
                                     lanes {peer_lanes}/{lanes}"
                                ),
                            });
                        }
                        for (lane, slot) in acc.iter_mut().enumerate() {
                            let v: u64 = r.get();
                            match (op, lane) {
                                (OP_FUSED, 0) => *slot |= v,
                                _ => *slot += v,
                            }
                        }
                        cx.recycle(payload);
                        owed[p] = false;
                        outstanding -= 1;
                        consumed = true;
                    }
                    if outstanding == 0 {
                        break;
                    }
                    if consumed {
                        backoff.reset();
                        continue;
                    }
                    if cx.has_send_work() {
                        let moved = cx.pump(true)?;
                        if moved > 0 {
                            backoff.reset();
                            continue;
                        }
                    }
                    cx.idle(&mut backoff, deadline, owed, "gather reduction")?;
                }
                // Broadcast the combined result and push it all the way
                // out — every peer is blocked on it.
                let mut body = cx.pool_buf();
                for &v in &acc {
                    v.encode(&mut body);
                }
                // In oversubscribed mode the RESULT is held so it
                // coalesces with the root's next frame to each peer (the
                // next round's DATA/SKIP, enqueued un-held, releases it)
                // — one wake-up per peer per round instead of two. The
                // engine's end-of-program flush pushes the last one; on
                // machines with spare cores the RESULT goes out
                // immediately instead, because peers could be computing
                // in parallel the moment they see it.
                let hold_result = cx.oversubscribed();
                for p in 1..workers {
                    let mut payload = cx.pool_buf();
                    payload.extend_from_slice(&body);
                    cx.enqueue(p, TAG_RESULT, payload, Return::Pool, hold_result);
                }
                cx.recycle(body);
                if !hold_result {
                    cx.drive_empty(deadline, "broadcast reduction result")?;
                }
                cx.stats.round_trips += 1;
                Ok(acc)
            } else {
                let mut payload = cx.pool_buf();
                op.encode(&mut payload);
                (lanes as u32).encode(&mut payload);
                for &v in values {
                    v.encode(&mut payload);
                }
                cx.enqueue(0, TAG_REDUCE, payload, Return::Pool, false);
                owed.fill(false);
                owed[0] = true;
                let mut backoff = Backoff::new();
                cx.pump(true)?;
                let (tag, payload) = loop {
                    if let Some(frame) = cx.early[0].pop_front() {
                        break frame;
                    }
                    if cx.has_send_work() {
                        let moved = cx.pump(true)?;
                        if moved > 0 {
                            backoff.reset();
                            continue;
                        }
                    }
                    cx.idle(&mut backoff, deadline, owed, "await reduction result")?;
                };
                if tag != TAG_RESULT {
                    return Err(TransportError::Protocol {
                        peer: 0,
                        detail: format!("expected RESULT, got tag {tag:#04x}"),
                    });
                }
                let mut r = Reader::new(&payload);
                let result = (0..lanes).map(|_| r.get()).collect();
                cx.recycle(payload);
                Ok(result)
            }
        })
    }

    /// Fallible [`ExchangeTransport::flush`]: release frames held for
    /// coalescing and drive every send queue onto the wire. Needed when a
    /// round's posts are *not* followed by a reduction (the multi-process
    /// result gather); a no-op for the synchronous driver, whose writes
    /// complete inside `post`/`sync`.
    pub fn try_flush(&self, worker: usize) -> Result<(), TransportError> {
        if !self.opts.batched {
            return Ok(());
        }
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let (mut cx, _) = ep.split(worker, self.opts.coalesce_limit, self.spins);
            for q in cx.send.iter_mut() {
                q.unhold();
            }
            cx.drive_empty(deadline, "flush send queues")
        })
    }

    /// Fallible [`ExchangeTransport::take_all_into`]: exactly one frame
    /// per peer per round, ascending rank order, self-delivery in rank
    /// place.
    pub fn try_take_all_into(
        &self,
        worker: usize,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) -> Result<(), TransportError> {
        if self.opts.batched {
            return self.try_take_all_into_batched(worker, out);
        }
        let deadline = self.io_deadline();
        out.clear();
        self.with_endpoint(worker, |ep| {
            let Endpoint {
                links,
                self_slot,
                read_pool,
                early,
                pending,
                read_watermark,
                ..
            } = ep;
            let mut round_max = 0usize;
            for (p, link) in links.iter().enumerate() {
                if p == worker {
                    if let Some(buf) = self_slot.take() {
                        out.push((p, buf));
                    }
                    continue;
                }
                let stream = link.as_ref().expect("mesh link missing");
                let (tag, buf) = next_frame(
                    stream,
                    &mut pending[p],
                    &mut early[p],
                    read_pool,
                    deadline,
                    p,
                )?;
                match tag {
                    TAG_DATA => {
                        round_max = round_max.max(buf.len());
                        out.push((p, buf));
                    }
                    TAG_SKIP => read_pool.push(buf),
                    other => {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!("expected DATA/SKIP, got tag {other:#04x}"),
                        })
                    }
                }
            }
            // Decay toward the current round's largest frame: a one-off
            // spike stops dominating within a few dozen rounds, while a
            // sustained large working set holds the watermark up.
            *read_watermark = round_max.max(*read_watermark - *read_watermark / 4);
            Ok(())
        })
    }

    /// Fallible generic reduction (gather on rank 0, broadcast back).
    fn try_reduce_op(
        &self,
        worker: usize,
        op: u8,
        values: &[u64],
    ) -> Result<Vec<u64>, TransportError> {
        if self.opts.batched {
            return self.try_reduce_op_batched(worker, op, values);
        }
        let deadline = self.io_deadline();
        self.with_endpoint(worker, |ep| {
            let lanes = values.len();
            let Endpoint {
                links,
                pending,
                early,
                read_pool,
                scratch,
                stats,
                ..
            } = ep;
            if worker == 0 {
                let mut acc = values.to_vec();
                for (p, link) in links.iter().enumerate().skip(1) {
                    let stream = link.as_ref().expect("mesh link missing");
                    let (tag, payload) = next_frame(
                        stream,
                        &mut pending[p],
                        &mut early[p],
                        read_pool,
                        deadline,
                        p,
                    )?;
                    if tag != TAG_REDUCE {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!("expected REDUCE, got tag {tag:#04x}"),
                        });
                    }
                    let mut r = Reader::new(&payload);
                    let peer_op: u8 = r.get();
                    let peer_lanes: u32 = r.get();
                    if peer_op != op || peer_lanes as usize != lanes {
                        return Err(TransportError::Protocol {
                            peer: p,
                            detail: format!(
                                "reduction shape mismatch: op {peer_op}/{op}, \
                                 lanes {peer_lanes}/{lanes}"
                            ),
                        });
                    }
                    for (lane, slot) in acc.iter_mut().enumerate() {
                        let v: u64 = r.get();
                        match (op, lane) {
                            (OP_FUSED, 0) => *slot |= v,
                            _ => *slot += v,
                        }
                    }
                    read_pool.push(payload);
                }
                scratch.clear();
                for &v in &acc {
                    v.encode(scratch);
                }
                for p in 1..links.len() {
                    write_frame_draining(
                        links, pending, early, read_pool, worker, p, TAG_RESULT, scratch, deadline,
                    )?;
                    stats.frames += 1;
                    stats.wire_bytes += FRAME_HEADER + scratch.len() as u64;
                }
                stats.round_trips += 1;
                Ok(acc)
            } else {
                scratch.clear();
                op.encode(scratch);
                (lanes as u32).encode(scratch);
                for &v in values {
                    v.encode(scratch);
                }
                write_frame_draining(
                    links, pending, early, read_pool, worker, 0, TAG_REDUCE, scratch, deadline,
                )?;
                stats.frames += 1;
                stats.wire_bytes += FRAME_HEADER + scratch.len() as u64;
                let stream = links[0].as_ref().expect("mesh link missing");
                let (tag, payload) = next_frame(
                    stream,
                    &mut pending[0],
                    &mut early[0],
                    read_pool,
                    deadline,
                    0,
                )?;
                if tag != TAG_RESULT {
                    return Err(TransportError::Protocol {
                        peer: 0,
                        detail: format!("expected RESULT, got tag {tag:#04x}"),
                    });
                }
                let mut r = Reader::new(&payload);
                let result = (0..lanes).map(|_| r.get()).collect();
                read_pool.push(payload);
                Ok(result)
            }
        })
    }

    /// Fallible [`ExchangeTransport::reduce`].
    pub fn try_reduce(&self, worker: usize, values: &[u64]) -> Result<Vec<u64>, TransportError> {
        self.try_reduce_op(worker, OP_SUM, values)
    }

    /// Fallible [`ExchangeTransport::reduce_round`].
    pub fn try_reduce_round(
        &self,
        worker: usize,
        again: u64,
        active: u64,
    ) -> Result<(u64, u64), TransportError> {
        let r = self.try_reduce_op(worker, OP_FUSED, &[again, active])?;
        Ok((r[0], r[1]))
    }
}

impl Tcp {
    /// Record `e` as this mesh's fault, then panic — the infallible
    /// [`ExchangeTransport`] surface treats a transport failure like any
    /// other worker panic (the run unwinds), while a recovery-capable
    /// supervisor catches the unwind and reads the typed error back via
    /// [`Tcp::take_fault`]. Fault-injection tests use the fallible
    /// `try_*` methods directly and never come through here.
    fn fail(&self, e: TransportError) -> ! {
        let msg = format!("tcp transport: {e}");
        {
            let mut slot = self.fault.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        panic!("{msg}")
    }

    /// Take the typed error behind the most recent transport panic, if
    /// any. A `Some` answer means the unwound run died of a data-plane
    /// failure (peer gone, timeout, protocol desync) — the recoverable
    /// class — rather than an engine bug.
    pub fn take_fault(&self) -> Option<TransportError> {
        self.fault.lock().take()
    }
}

impl ExchangeTransport for Tcp {
    fn name(&self) -> &'static str {
        if self.opts.batched {
            "tcp-batched"
        } else {
            "tcp"
        }
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn post(&self, from: usize, to: usize, data: Vec<u8>) {
        self.try_post(from, to, data)
            .unwrap_or_else(|e| self.fail(e))
    }

    fn sync(&self, worker: usize) {
        self.try_sync(worker).unwrap_or_else(|e| self.fail(e))
    }

    fn flush(&self, worker: usize) {
        self.try_flush(worker).unwrap_or_else(|e| self.fail(e))
    }

    fn take_all_into(&self, worker: usize, out: &mut Vec<(usize, Vec<u8>)>) {
        self.try_take_all_into(worker, out)
            .unwrap_or_else(|e| self.fail(e))
    }

    fn recycle(&self, worker: usize, sender: usize, mut buf: Vec<u8>) {
        // Receive buffers never leave the receiving worker; buffers the
        // worker sent to itself rejoin the send-return path — with their
        // length intact, so `BufferPool::put` charges them to the round
        // footprint exactly like the in-process return stacks do.
        self.assert_local(worker);
        let mut ep = self.endpoints[worker].lock();
        if sender == worker {
            ep.send_returns.push(buf);
        } else {
            buf.clear();
            // Release capacity a one-off giant round would otherwise pin
            // on the receive freelist forever (watermark-bounded, so a
            // sustained large working set is left alone).
            let cap_limit = (2 * ep.read_watermark).max(READ_RETAIN_MIN);
            if buf.capacity() > cap_limit {
                buf.shrink_to(cap_limit);
            }
            ep.read_pool.push(buf);
        }
    }

    fn reclaim_into(&self, worker: usize, pool: &mut BufferPool) {
        self.assert_local(worker);
        let mut ep = self.endpoints[worker].lock();
        pool.put_all(ep.send_returns.drain(..));
    }

    fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        self.try_reduce(worker, values)
            .unwrap_or_else(|e| self.fail(e))
    }

    fn reduce_round(&self, worker: usize, again: u64, active: u64) -> (u64, u64) {
        self.try_reduce_round(worker, again, active)
            .unwrap_or_else(|e| self.fail(e))
    }

    fn stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for ep in &self.endpoints {
            total.merge(&ep.lock().stats);
        }
        total
    }

    fn worker_stats(&self, worker: usize) -> TransportStats {
        self.endpoints[worker].lock().stats
    }

    fn wait_budget(&self) -> Option<u32> {
        // Only the batched driver has a readiness multiplexer; the
        // synchronous driver blocks per-socket and has no spin phase.
        self.opts.batched.then_some(self.spins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Full mesh exchange + fused reduction across real sockets.
    #[test]
    fn tcp_exchange_and_reduce_round() {
        let t = Arc::new(Tcp::loopback(3).unwrap());
        let mut handles = Vec::new();
        for w in 0..3usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                let mut seen = Vec::new();
                for round in 0..5u8 {
                    // Send to self and to (w+1) % 3 only; others get SKIP.
                    t.post(w, w, vec![round, w as u8]);
                    t.post(w, (w + 1) % 3, vec![round, w as u8, 7]);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(w, s, buf);
                    }
                    seen.push(senders);
                    let (mask, active) = t.reduce_round(w, 1 << w, w as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                seen
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let seen = h.join().unwrap();
            // Every round: one buffer from the predecessor, one from self,
            // in ascending sender order.
            let pred = (w + 2) % 3;
            let mut expect = vec![pred, w];
            expect.sort_unstable();
            for senders in seen {
                assert_eq!(senders, expect, "worker {w}");
            }
        }
        let stats = t.stats();
        assert!(stats.wire_bytes > 0);
        assert_eq!(stats.round_trips, 5);
    }

    /// One giant round must not pin giant receive buffers on the
    /// transport's freelist forever: the decaying watermark releases the
    /// capacity once rounds shrink again.
    #[test]
    fn giant_round_receive_buffers_are_trimmed() {
        let t = Arc::new(Tcp::loopback(2).unwrap());
        let mut handles = Vec::new();
        for w in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                for round in 0..40usize {
                    let size = if round == 0 { 1 << 20 } else { 256 };
                    t.post(w, 1 - w, vec![w as u8; size]);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    for (s, buf) in received.drain(..) {
                        t.recycle(w, s, buf);
                    }
                    let _ = t.reduce(w, &[1]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..2 {
            let pooled = t.receive_pool_bytes(w);
            assert!(
                pooled <= 64 << 10,
                "worker {w} still pins {pooled} bytes of receive capacity"
            );
        }
    }

    /// The multi-process shape: each rank owns its own `Tcp::mesh` object
    /// (separate listener, shared address table) and the meshes
    /// interoperate over real sockets exactly like the loopback shape —
    /// exchange, SKIP markers, fused reductions.
    #[test]
    fn mesh_endpoints_in_separate_objects_interoperate() {
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
            .collect();
        let addrs: Vec<std::net::SocketAddr> =
            listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                let t = Tcp::mesh(rank, addrs, listener, TcpOptions::default()).unwrap();
                assert_eq!(t.local_rank(), Some(rank));
                let mut received = Vec::new();
                for round in 0..4u8 {
                    t.post(rank, rank, vec![round, rank as u8]);
                    t.post(rank, (rank + 1) % 3, vec![round, rank as u8, 9]);
                    t.sync(rank);
                    t.take_all_into(rank, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(rank, s, buf);
                    }
                    let mut expect = vec![(rank + 2) % 3, rank];
                    expect.sort_unstable();
                    assert_eq!(senders, expect, "rank {rank} round {round}");
                    let (mask, active) = t.reduce_round(rank, 1 << rank, rank as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                t.worker_stats(rank)
            }));
        }
        let mut wire = 0;
        for h in handles {
            wire += h.join().unwrap().wire_bytes;
        }
        assert!(wire > 0);
    }

    /// A mesh object refuses to drive any rank but its own: those workers
    /// live in other processes.
    #[test]
    #[should_panic(expected = "lives in another process")]
    fn mesh_guards_nonlocal_workers() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = Tcp::mesh(0, vec![addr, addr], listener, TcpOptions::default()).unwrap();
        t.post(1, 0, vec![1]);
    }

    /// The exchange/reduction pattern of `tcp_exchange_and_reduce_round`,
    /// under the batched driver: identical observable behavior, plus
    /// coalescing actually happening (the root-bound `DATA`/`SKIP` rides
    /// with each round's `REDUCE`).
    #[test]
    fn batched_exchange_and_reduce_round() {
        let t = Arc::new(Tcp::loopback_with(3, TcpOptions::batched()).unwrap());
        assert_eq!(t.name(), "tcp-batched");
        let mut handles = Vec::new();
        for w in 0..3usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                let mut seen = Vec::new();
                for round in 0..5u8 {
                    t.post(w, w, vec![round, w as u8]);
                    t.post(w, (w + 1) % 3, vec![round, w as u8, 7]);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(w, s, buf);
                    }
                    seen.push(senders);
                    let (mask, active) = t.reduce_round(w, 1 << w, w as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                // The final RESULT may be held for coalescing; nothing
                // follows, so push it (what the engine does after its
                // superstep loop).
                t.flush(w);
                seen
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let seen = h.join().unwrap();
            let pred = (w + 2) % 3;
            let mut expect = vec![pred, w];
            expect.sort_unstable();
            for senders in seen {
                assert_eq!(senders, expect, "worker {w}");
            }
        }
        let stats = t.stats();
        assert!(stats.wire_bytes > 0);
        assert_eq!(stats.round_trips, 5);
        assert!(
            stats.coalesced_frames > 0,
            "no frames were coalesced: {stats:?}"
        );
        assert!(stats.flushes > 0);
    }

    /// The batched driver moves fewer wire frames than the synchronous
    /// one for the same traffic — the whole point of coalescing.
    #[test]
    fn batched_driver_reduces_wire_frames() {
        let run = |opts: TcpOptions| {
            let t = Arc::new(Tcp::loopback_with(3, opts).unwrap());
            let mut handles = Vec::new();
            for w in 0..3usize {
                let t = Arc::clone(&t);
                handles.push(std::thread::spawn(move || {
                    let mut received = Vec::new();
                    for _ in 0..10 {
                        t.post(w, (w + 1) % 3, vec![w as u8; 16]);
                        t.sync(w);
                        t.take_all_into(w, &mut received);
                        for (s, buf) in received.drain(..) {
                            t.recycle(w, s, buf);
                        }
                        let _ = t.reduce_round(w, 0, 1);
                    }
                    t.flush(w);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            t.stats()
        };
        let sync = run(TcpOptions::default());
        let batched = run(TcpOptions::batched());
        assert!(
            batched.frames < sync.frames,
            "batched sent {} frames, sync {}",
            batched.frames,
            sync.frames
        );
        assert!(batched.coalesced_frames > 0);
        assert_eq!(sync.coalesced_frames, 0);
        assert_eq!(sync.round_trips, batched.round_trips);
    }

    /// Frames far larger than kernel socket buffering under the batched
    /// driver: the readiness loop resumes partial writes and reads from
    /// its per-peer cursors, so the all-to-all completes intact.
    #[test]
    fn batched_giant_frames_complete() {
        const WORKERS: usize = 3;
        const LEN: usize = 4 << 20;
        let t = Arc::new(Tcp::loopback_with(WORKERS, TcpOptions::batched()).unwrap());
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                for round in 0..2u8 {
                    for peer in 0..WORKERS {
                        let mut buf = vec![w as u8 ^ round; LEN];
                        buf[0] = w as u8;
                        t.post(w, peer, buf);
                    }
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    assert_eq!(received.len(), WORKERS);
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf.len(), LEN);
                        assert_eq!(buf[0], s as u8);
                        assert!(buf[1..].iter().all(|&b| b == s as u8 ^ round));
                        t.recycle(w, s, buf);
                    }
                    let (mask, active) = t.reduce_round(w, 1 << w, 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, WORKERS as u64);
                }
                t.flush(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A round with no reduction after it (the multi-process result
    /// gather): `flush` releases frames held for coalescing, so the
    /// receiver is not left waiting on a parked send queue.
    #[test]
    fn batched_flush_releases_held_frames() {
        let t = Arc::new(Tcp::loopback_with(2, TcpOptions::batched()).unwrap());
        let t1 = Arc::clone(&t);
        let sender = std::thread::spawn(move || {
            t1.post(1, 0, vec![42; 8]);
            t1.sync(1);
            t1.flush(1);
            let mut received = Vec::new();
            t1.take_all_into(1, &mut received);
            assert!(received.is_empty() || received[0].0 == 0);
        });
        t.post(0, 0, vec![9]);
        t.sync(0);
        t.flush(0);
        let mut received = Vec::new();
        t.take_all_into(0, &mut received);
        sender.join().unwrap();
        let senders: Vec<usize> = received.iter().map(|&(s, _)| s).collect();
        assert_eq!(senders, vec![0, 1], "held frame was flushed to rank 0");
        assert_eq!(received[1].1, vec![42; 8]);
    }

    /// The batch payload codec round-trips and rejects malformations with
    /// typed protocol errors.
    #[test]
    fn batch_codec_roundtrip_and_validation() {
        let frames = vec![
            (TAG_DATA, vec![1, 2, 3]),
            (TAG_SKIP, Vec::new()),
            (TAG_REDUCE, vec![9; 40]),
        ];
        let payload = encode_batch(&frames);
        assert_eq!(decode_batch(&payload, 7).unwrap(), frames);

        let assert_protocol = |bytes: &[u8], what: &str| match decode_batch(bytes, 7) {
            Err(TransportError::Protocol { peer: 7, .. }) => {}
            other => panic!("{what}: expected Protocol, got {other:?}"),
        };
        assert_protocol(&[], "empty payload");
        assert_protocol(&0u32.to_le_bytes(), "zero sub-frames");
        assert_protocol(&u32::MAX.to_le_bytes(), "absurd count");
        // Directory larger than the payload.
        assert_protocol(&2u32.to_le_bytes(), "truncated directory");
        // Sub-frame length overruns the payload.
        let mut bad = Vec::new();
        1u32.encode(&mut bad);
        bad.push(TAG_DATA);
        100u32.encode(&mut bad);
        bad.extend_from_slice(&[0; 10]);
        assert_protocol(&bad, "overrunning sub-frame");
        // Trailing bytes after the last sub-frame.
        let mut trailing = encode_batch(&[(TAG_DATA, vec![1])]);
        trailing.push(0xee);
        assert_protocol(&trailing, "trailing bytes");
        // Nested super-frame.
        let nested = encode_batch(&[(TAG_BATCH, vec![0; 4]), (TAG_DATA, vec![1])]);
        assert_protocol(&nested, "nested batch");
    }

    /// Batched mesh endpoints in separate objects (the multi-process
    /// shape) interoperate exactly like the loopback shape.
    #[test]
    fn batched_mesh_endpoints_interoperate() {
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
            .collect();
        let addrs: Vec<std::net::SocketAddr> =
            listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                let t = Tcp::mesh(rank, addrs, listener, TcpOptions::batched()).unwrap();
                let mut received = Vec::new();
                for round in 0..4u8 {
                    t.post(rank, rank, vec![round, rank as u8]);
                    t.post(rank, (rank + 1) % 3, vec![round, rank as u8, 9]);
                    t.sync(rank);
                    t.take_all_into(rank, &mut received);
                    let mut senders = Vec::new();
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf[0], round);
                        assert_eq!(buf[1], s as u8);
                        senders.push(s);
                        t.recycle(rank, s, buf);
                    }
                    let mut expect = vec![(rank + 2) % 3, rank];
                    expect.sort_unstable();
                    assert_eq!(senders, expect, "rank {rank} round {round}");
                    let (mask, active) = t.reduce_round(rank, 1 << rank, rank as u64 + 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, 6);
                }
                t.flush(rank);
                t.worker_stats(rank)
            }));
        }
        let mut wire = 0;
        let mut coalesced = 0;
        for h in handles {
            let stats = h.join().unwrap();
            wire += stats.wire_bytes;
            coalesced += stats.coalesced_frames;
        }
        assert!(wire > 0);
        assert!(coalesced > 0, "mesh endpoints coalesced nothing");
    }

    /// Pool traffic under the batched driver is identical to the
    /// synchronous one: posted buffers come home through `reclaim_into`
    /// by the time the next round drains.
    #[test]
    fn batched_send_buffers_are_reclaimed() {
        let t = Arc::new(Tcp::loopback_with(2, TcpOptions::batched()).unwrap());
        let mut handles = Vec::new();
        for w in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut pool = BufferPool::new();
                let mut received = Vec::new();
                for _ in 0..3 {
                    t.reclaim_into(w, &mut pool);
                    let mut buf = pool.get();
                    buf.extend_from_slice(&[w as u8; 16]);
                    t.post(w, 1 - w, buf);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    for (s, b) in received.drain(..) {
                        t.recycle(w, s, b);
                    }
                    let _ = t.reduce(w, &[1]);
                }
                t.flush(w);
                pool.stats()
            }));
        }
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 2);
        }
    }

    /// Posted buffers come home to the engine pool via reclaim, exactly
    /// like the in-process return stacks.
    #[test]
    fn tcp_send_buffers_are_reclaimed() {
        let t = Arc::new(Tcp::loopback(2).unwrap());
        let mut handles = Vec::new();
        for w in 0..2usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut pool = BufferPool::new();
                let mut received = Vec::new();
                for _ in 0..3 {
                    t.reclaim_into(w, &mut pool);
                    let mut buf = pool.get();
                    buf.extend_from_slice(&[w as u8; 16]);
                    t.post(w, 1 - w, buf);
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    for (s, b) in received.drain(..) {
                        t.recycle(w, s, b);
                    }
                    let _ = t.reduce(w, &[1]);
                }
                pool.stats()
            }));
        }
        for h in handles {
            let stats = h.join().unwrap();
            // Round 1 allocates the send buffer; rounds 2-3 reuse it.
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 2);
        }
    }

    /// The mode-restore epilogue never swallows a failure: the
    /// operation's error wins when both fail, and a restore failure on a
    /// successful operation surfaces instead of being discarded (the
    /// socket would otherwise be silently left non-blocking).
    #[test]
    fn with_restored_never_swallows_an_error() {
        let op_err = || -> Result<u8, TransportError> {
            Err(TransportError::Timeout {
                peer: 1,
                during: "op",
            })
        };
        let restore_err = || -> Result<(), TransportError> {
            Err(TransportError::Disconnected {
                peer: 1,
                during: "restore",
            })
        };
        match with_restored(Ok(7u8), Ok(())) {
            Ok(v) => assert_eq!(v, 7),
            other => panic!("expected Ok(7), got {other:?}"),
        }
        // Both failed: the operation's error is the root cause.
        match with_restored(op_err(), restore_err()) {
            Err(TransportError::Timeout { during, .. }) => assert_eq!(during, "op"),
            other => panic!("expected the operation error, got {other:?}"),
        }
        // Operation fine, restore failed: the restore error must not
        // vanish — this was the swallowed-error bug.
        match with_restored(Ok(7u8), restore_err()) {
            Err(TransportError::Disconnected { during, .. }) => assert_eq!(during, "restore"),
            other => panic!("expected the restore error, got {other:?}"),
        }
    }

    /// `TcpOptions::spins` overrides the cores-vs-workers heuristic and
    /// surfaces through the transport's readiness hint; `None` keeps the
    /// heuristic, and the synchronous driver reports no budget at all.
    #[test]
    fn wait_budget_reflects_the_spin_override() {
        let t = Tcp::loopback_with(
            2,
            TcpOptions {
                spins: Some(7),
                ..TcpOptions::batched()
            },
        )
        .unwrap();
        assert_eq!(t.wait_budget(), Some(7));

        let t = Tcp::loopback_with(2, TcpOptions::batched()).unwrap();
        assert_eq!(t.wait_budget(), Some(poll_spins(2)));

        let t = Tcp::loopback(2).unwrap();
        assert_eq!(t.wait_budget(), None, "no multiplexer in the sync driver");
    }
}
