//! # pc-bench — workloads and table harnesses
//!
//! The [`datasets`] module generates the scaled-down stand-ins for the
//! paper's Table III datasets, and [`table`] provides the row-printing
//! helpers shared by the per-table bench binaries (see `benches/`).

pub mod datasets;
pub mod report;
pub mod table;
