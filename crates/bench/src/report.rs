//! The `BENCH_exchange.json` serializer.
//!
//! Extracted from the bench binary so the emitted JSON is testable: CI
//! parses this file with `python3 -c "json.load(...)"` assertions, so a
//! single non-finite float (`NaN`/`inf` have no JSON spelling) breaks
//! the gate long after the run that produced it. Every ratio emitted
//! here is therefore guarded — in particular `pool_hit_rate`, whose
//! `0/0` case (a zero-round workload never requests a buffer) is pinned
//! to `1.0`, matching [`pc_bsp::pool::PoolStats::hit_rate`].

use pc_bsp::RunStats;
use std::fmt::Write as _;

/// One bench row: a workload measured under one execution mode.
pub struct BenchEntry {
    /// Workload name (e.g. `"wcc_ring_skewed"`).
    pub workload: String,
    /// Execution mode (`"sequential"`, `"threads"`, `"tcp"`, ...).
    pub mode: &'static str,
    /// The run's statistics.
    pub stats: RunStats,
}

/// A ratio that must serialize as valid JSON: non-finite values (0/0
/// divisions, overflow) collapse to `fallback`.
fn finite(v: f64, fallback: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        fallback
    }
}

/// Pool hit rate with the `0/0` case pinned: a workload that never
/// requested a buffer never missed one.
fn pool_hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        finite(hits as f64 / total as f64, 1.0)
    }
}

/// Render the complete `BENCH_exchange.json` document.
pub fn exchange_json(scale: u32, workers: usize, entries: &[BenchEntry]) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"exchange\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let s = &e.stats;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", e.workload);
        let _ = writeln!(json, "      \"mode\": \"{}\",", e.mode);
        let _ = writeln!(
            json,
            "      \"runtime_ms\": {:.3},",
            finite(s.millis(), 0.0)
        );
        let _ = writeln!(
            json,
            "      \"remote_mib\": {:.4},",
            finite(s.remote_mib(), 0.0)
        );
        let _ = writeln!(json, "      \"supersteps\": {},", s.supersteps);
        let _ = writeln!(json, "      \"rounds\": {},", s.rounds);
        let _ = writeln!(json, "      \"max_rank_msgs\": {},", s.max_rank_msgs);
        let _ = writeln!(json, "      \"mirrored_msgs\": {},", s.mirrored_msgs());
        let _ = writeln!(json, "      \"mirror_saved_frames\": {},", s.mirror_saved());
        let _ = writeln!(json, "      \"pool_hits\": {},", s.pool.hits);
        let _ = writeln!(json, "      \"pool_misses\": {},", s.pool.misses);
        let _ = writeln!(
            json,
            "      \"pool_hit_rate\": {:.6},",
            pool_hit_rate(s.pool.hits, s.pool.misses)
        );
        let _ = writeln!(
            json,
            "      \"barrier_crossings\": {},",
            s.barrier_crossings
        );
        let _ = writeln!(
            json,
            "      \"crossings_per_round\": {:.4},",
            finite(s.crossings_per_round(), 0.0)
        );
        let _ = writeln!(json, "      \"wire_frames\": {},", s.transport.frames);
        let _ = writeln!(
            json,
            "      \"wire_mib\": {:.4},",
            finite(s.wire_mib(), 0.0)
        );
        let _ = writeln!(
            json,
            "      \"coalesced_frames\": {},",
            s.transport.coalesced_frames
        );
        let _ = writeln!(json, "      \"flushes\": {},", s.transport.flushes);
        let _ = writeln!(
            json,
            "      \"send_stall_us\": {},",
            s.transport.send_stall_us
        );
        let _ = writeln!(
            json,
            "      \"recv_stall_us\": {},",
            s.transport.recv_stall_us
        );
        let _ = writeln!(json, "      \"poll_waits\": {},", s.transport.poll_waits);
        let _ = writeln!(
            json,
            "      \"wakeups_spurious\": {}",
            s.transport.wakeups_spurious
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    json
}

/// Render one run's complete [`RunStats`] as a standalone JSON document —
/// the `--stats-json` payload. Everything `report()` prints to stderr is
/// here as a machine-readable field, plus the full transport counters,
/// the per-channel breakdown, and (when the run traced) the merged
/// per-superstep timeline — so CI and scripts stop grepping report lines.
pub fn run_stats_json(stats: &RunStats) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"runtime_ms\": {:.3},",
        finite(stats.millis(), 0.0)
    );
    let _ = writeln!(json, "  \"supersteps\": {},", stats.supersteps);
    let _ = writeln!(json, "  \"rounds\": {},", stats.rounds);
    let _ = writeln!(json, "  \"remote_bytes\": {},", stats.remote_bytes());
    let _ = writeln!(json, "  \"total_bytes\": {},", stats.total_bytes());
    let _ = writeln!(json, "  \"messages\": {},", stats.messages());
    let _ = writeln!(json, "  \"max_rank_msgs\": {},", stats.max_rank_msgs);
    let _ = writeln!(json, "  \"mirrored_msgs\": {},", stats.mirrored_msgs());
    let _ = writeln!(json, "  \"mirror_saved\": {},", stats.mirror_saved());
    let _ = writeln!(
        json,
        "  \"barrier_crossings\": {},",
        stats.barrier_crossings
    );
    let _ = writeln!(json, "  \"barrier_spins\": {},", stats.barrier_spins);
    let _ = writeln!(json, "  \"recoveries\": {},", stats.recoveries);
    let _ = writeln!(json, "  \"recovery_us\": {},", stats.recovery_us);
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"hits\": {},", stats.pool.hits);
    let _ = writeln!(json, "    \"misses\": {},", stats.pool.misses);
    let _ = writeln!(
        json,
        "    \"hit_rate\": {:.6}",
        pool_hit_rate(stats.pool.hits, stats.pool.misses)
    );
    let _ = writeln!(json, "  }},");
    let t = &stats.transport;
    let _ = writeln!(json, "  \"transport\": {{");
    let _ = writeln!(json, "    \"name\": \"{}\",", stats.transport_name);
    let _ = writeln!(json, "    \"wire_bytes\": {},", t.wire_bytes);
    let _ = writeln!(json, "    \"frames\": {},", t.frames);
    let _ = writeln!(json, "    \"round_trips\": {},", t.round_trips);
    let _ = writeln!(json, "    \"coalesced_frames\": {},", t.coalesced_frames);
    let _ = writeln!(json, "    \"flushes\": {},", t.flushes);
    let _ = writeln!(json, "    \"send_stall_us\": {},", t.send_stall_us);
    let _ = writeln!(json, "    \"recv_stall_us\": {},", t.recv_stall_us);
    let _ = writeln!(json, "    \"poll_waits\": {},", t.poll_waits);
    let _ = writeln!(json, "    \"wakeups_spurious\": {}", t.wakeups_spurious);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"channels\": [");
    for (i, c) in stats.channels.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(json, "      \"remote_bytes\": {},", c.bytes.remote);
        let _ = writeln!(json, "      \"local_bytes\": {},", c.bytes.local);
        let _ = writeln!(json, "      \"messages\": {},", c.messages);
        let _ = writeln!(json, "      \"mirrored\": {},", c.mirrored);
        let _ = writeln!(json, "      \"mirror_saved\": {}", c.mirror_saved);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < stats.channels.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"timeline\": [");
    for (i, r) in stats.timeline.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"superstep\": {},", r.superstep);
        let _ = writeln!(json, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(json, "      \"active\": {},", r.active);
        let _ = writeln!(json, "      \"messages\": {},", r.messages);
        let _ = writeln!(json, "      \"remote_bytes\": {},", r.remote_bytes);
        let _ = writeln!(json, "      \"stall_us\": {},", r.stall_us);
        let _ = writeln!(json, "      \"pool_misses\": {},", r.pool_misses);
        let _ = writeln!(json, "      \"compute_us\": {},", r.compute_us);
        let _ = writeln!(json, "      \"exchange_us\": {}", r.exchange_us);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < stats.timeline.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(workload: &str, stats: RunStats) -> BenchEntry {
        BenchEntry {
            workload: workload.to_string(),
            mode: "threads",
            stats,
        }
    }

    /// The 0/0 pool case of a zero-round workload serializes as `1.0`,
    /// and nothing in the document spells a non-finite float — the
    /// regression the CI `json.load` gate depends on.
    #[test]
    fn zero_round_workload_serializes_to_valid_json() {
        let json = exchange_json(10, 4, &[entry("empty", RunStats::default())]);
        assert!(json.contains("\"pool_hit_rate\": 1.000000"), "{json}");
        for bad in ["NaN", "nan", "inf"] {
            assert!(!json.contains(bad), "non-finite float leaked: {json}");
        }
        // Structural sanity a JSON parser would enforce: balanced braces,
        // no trailing comma before a closing brace.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",\n    }"), "trailing comma: {json}");
        assert!(!json.contains(",\n  ]"), "trailing comma: {json}");
    }

    #[test]
    fn hit_rate_guards_division() {
        assert_eq!(pool_hit_rate(0, 0), 1.0);
        assert_eq!(pool_hit_rate(3, 1), 0.75);
        assert_eq!(pool_hit_rate(0, 5), 0.0);
    }

    /// The stall and readiness columns flow through to the document.
    #[test]
    fn stall_and_poll_columns_are_emitted() {
        let mut stats = RunStats::default();
        stats.transport.send_stall_us = 7;
        stats.transport.recv_stall_us = 11;
        stats.transport.poll_waits = 3;
        stats.transport.wakeups_spurious = 1;
        let json = exchange_json(10, 4, &[entry("w", stats)]);
        assert!(json.contains("\"send_stall_us\": 7,"), "{json}");
        assert!(json.contains("\"recv_stall_us\": 11,"), "{json}");
        assert!(json.contains("\"poll_waits\": 3,"), "{json}");
        assert!(json.contains("\"wakeups_spurious\": 1\n"), "{json}");
    }

    /// `run_stats_json` is structurally valid for both an empty default
    /// and a populated run with channels and a traced timeline: balanced
    /// braces, no trailing commas, no non-finite floats, and the
    /// timeline rows carried through.
    #[test]
    fn run_stats_json_is_wellformed() {
        use pc_bsp::trace::SuperstepStats;
        use pc_bsp::ChannelMetrics;
        let empty = run_stats_json(&RunStats::default());
        let mut stats = RunStats {
            supersteps: 2,
            rounds: 3,
            transport_name: "tcp-batched",
            recoveries: 4,
            recovery_us: 12_500,
            ..Default::default()
        };
        stats.absorb_channels(vec![ChannelMetrics {
            name: "prop".to_string(),
            messages: 5,
            ..Default::default()
        }]);
        stats.timeline = vec![
            SuperstepStats {
                superstep: 1,
                rounds: 2,
                active: 10,
                messages: 4,
                remote_bytes: 64,
                stall_us: 7,
                pool_misses: 0,
                compute_us: 3,
                exchange_us: 9,
            },
            SuperstepStats {
                superstep: 2,
                rounds: 1,
                ..Default::default()
            },
        ];
        let full = run_stats_json(&stats);
        for json in [&empty, &full] {
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
            for bad in ["NaN", "nan", "inf"] {
                assert!(!json.contains(bad), "non-finite float leaked: {json}");
            }
            assert!(!json.contains(",\n    }"), "trailing comma: {json}");
            assert!(!json.contains(",\n  ]"), "trailing comma: {json}");
            assert!(!json.contains(",\n  }"), "trailing comma: {json}");
        }
        assert!(empty.contains("\"timeline\": [\n  ]"), "{empty}");
        assert_eq!(full.matches("\"superstep\":").count(), 2, "{full}");
        assert!(full.contains("\"name\": \"prop\""), "{full}");
        assert!(full.contains("\"stall_us\": 7"), "{full}");
        assert!(full.contains("\"recoveries\": 4"), "{full}");
        assert!(full.contains("\"recovery_us\": 12500"), "{full}");
        assert!(empty.contains("\"recoveries\": 0"), "{empty}");
    }

    /// Entries separate with commas; the last one carries none.
    #[test]
    fn entry_separators_are_json_clean() {
        let json = exchange_json(
            10,
            4,
            &[
                entry("a", RunStats::default()),
                entry("b", RunStats::default()),
            ],
        );
        assert_eq!(json.matches("    },").count(), 1, "{json}");
        assert_eq!(json.matches("    }\n").count(), 1, "{json}");
    }
}
