//! Table-printing helpers shared by the per-table bench binaries.
//!
//! Each bench prints rows in the paper's format — `runtime` and
//! `message` volume per program — side by side with the paper's reported
//! numbers, so EXPERIMENTS.md can record paper-vs-measured shapes.

use pc_bsp::RunStats;

/// One measured row of a table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name (e.g. `"channel (scatter)"`).
    pub program: String,
    /// Dataset name.
    pub dataset: String,
    /// Measured wall time in milliseconds.
    pub runtime_ms: f64,
    /// Measured remote ("network") traffic in MiB.
    pub message_mib: f64,
    /// Supersteps.
    pub supersteps: u64,
    /// Exchange rounds.
    pub rounds: u64,
}

impl Row {
    /// Build a row from a program's [`RunStats`].
    pub fn new(program: &str, dataset: &str, stats: &RunStats) -> Self {
        Row {
            program: program.to_string(),
            dataset: dataset.to_string(),
            runtime_ms: stats.millis(),
            message_mib: stats.remote_mib(),
            supersteps: stats.supersteps,
            rounds: stats.rounds,
        }
    }
}

/// Print a table of measured rows with a title and the paper's reference
/// numbers underneath (free text).
pub fn print_table(title: &str, rows: &[Row], paper_reference: &str) {
    println!();
    println!("=== {title} ===");
    println!(
        "{:<28} {:<14} {:>12} {:>14} {:>10} {:>8}",
        "program", "dataset", "runtime(ms)", "message(MiB)", "supersteps", "rounds"
    );
    for r in rows {
        println!(
            "{:<28} {:<14} {:>12.1} {:>14.3} {:>10} {:>8}",
            r.program, r.dataset, r.runtime_ms, r.message_mib, r.supersteps, r.rounds
        );
    }
    if !paper_reference.is_empty() {
        println!("--- paper reference ---");
        for line in paper_reference.trim_matches('\n').lines() {
            println!("  {line}");
        }
    }
}

/// Speedup of `b` over `a` in wall time (a.runtime / b.runtime).
pub fn speedup(a: &Row, b: &Row) -> f64 {
    a.runtime_ms / b.runtime_ms
}

/// Message reduction factor of `b` vs `a` (a.bytes / b.bytes).
pub fn message_ratio(a: &Row, b: &Row) -> f64 {
    if b.message_mib == 0.0 {
        f64::INFINITY
    } else {
        a.message_mib / b.message_mib
    }
}

/// Print a one-line derived comparison.
pub fn print_ratio(label: &str, value: f64) {
    println!("  {label}: {value:.2}x");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_bsp::metrics::{ByteCounter, ChannelMetrics};
    use std::time::Duration;

    fn stats(ms: u64, bytes: u64) -> RunStats {
        let mut s = RunStats {
            elapsed: Duration::from_millis(ms),
            ..Default::default()
        };
        s.absorb_channels(vec![ChannelMetrics {
            name: "x".into(),
            bytes: ByteCounter {
                remote: bytes,
                local: 0,
            },
            messages: 1,
            mirrored: 0,
            mirror_saved: 0,
        }]);
        s
    }

    #[test]
    fn ratios() {
        let a = Row::new("a", "d", &stats(100, 2 * 1024 * 1024));
        let b = Row::new("b", "d", &stats(50, 1024 * 1024));
        assert!((speedup(&a, &b) - 2.0).abs() < 1e-9);
        assert!((message_ratio(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_message_ratio_is_infinite() {
        let a = Row::new("a", "d", &stats(100, 1024));
        let b = Row::new("b", "d", &stats(100, 0));
        assert!(message_ratio(&a, &b).is_infinite());
    }
}
