//! Scaled-down stand-ins for the paper's datasets (Table III).
//!
//! The real datasets are 18M–2.9B edges; the simulated cluster runs on one
//! box, so each dataset is generated at a default scale of ~10⁵–10⁶ arcs
//! with the *structural* property that drives its role in the evaluation:
//!
//! | Paper dataset | Stand-in | Key property preserved |
//! |---|---|---|
//! | Wikipedia (directed, avg deg 9.4) | R-MAT, scale s, ~9·n arcs | skewed degrees, low diameter |
//! | WebUK (directed, avg deg 23.7) | R-MAT, ~24·n arcs | denser power law |
//! | Facebook (undirected, avg deg 3.1) | R-MAT undirected, ~1.6·n edges | sparse — reqresp beats scatter in S-V |
//! | Twitter (undirected, avg deg 70.5) | R-MAT undirected, ~16·n edges | dense — scatter beats reqresp in S-V |
//! | Tree (100M) | random recursive forest | pointer-jumping depth ~log n |
//! | Chain (100M) | path | pointer-jumping worst case |
//! | USA Road (avg deg 2.4) | 2-D grid + diagonals, weighted | large diameter, low degree |
//! | RMAT24 (weighted, avg deg 16) | weighted R-MAT, 16·n arcs | skew + weights for MSF |
//!
//! All functions take a `scale` exponent (vertices = `2^scale`) so the
//! bench harness can sweep sizes; `PC_SCALE` in the environment bumps the
//! default.

use pc_graph::gen::{self, RmatParams};
use pc_graph::{Graph, VertexId, WeightedGraph};

/// Read a numeric knob from the environment: unset means `default`, set
/// means it must parse. A set-but-garbage value (`PC_SCALE=abc`) used to
/// fall back silently, so a typo'd sweep measured the default scale and
/// labeled it with the intended one — now it aborts loudly instead (the
/// same policy `pcgraph` applies to `PC_IO_DEADLINE_MS`).
pub fn env_number<T: std::str::FromStr>(name: &str, default: T) -> T {
    parse_env_value(name, std::env::var(name), default)
}

/// [`env_number`] with the lookup injected, so tests can cover the
/// garbage path without racing on the process environment.
fn parse_env_value<T: std::str::FromStr>(
    name: &str,
    value: Result<String, std::env::VarError>,
    default: T,
) -> T {
    match value {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("{name} is set but not unicode: {v:?}")
        }
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got {v:?}")),
    }
}

/// Default scale exponent (vertices = 2^scale) used by the table benches.
/// Override with the `PC_SCALE` environment variable (a set-but-garbage
/// value is a loud error, never a silent default-scale run).
pub fn default_scale() -> u32 {
    env_number("PC_SCALE", 13)
}

/// Number of simulated workers used by the table benches.
/// Override with `PC_WORKERS` (same loud-error policy as `PC_SCALE`).
pub fn default_workers() -> usize {
    env_number("PC_WORKERS", 4)
}

/// Wikipedia stand-in: directed power-law, avg out-degree ≈ 9.
pub fn wikipedia(scale: u32) -> Graph {
    gen::rmat(scale, 9 << scale, RmatParams::default(), seed(1), true)
}

/// WebUK stand-in: directed power-law, avg out-degree ≈ 24.
pub fn webuk(scale: u32) -> Graph {
    gen::rmat(scale, 24 << scale, RmatParams::default(), seed(2), true)
}

/// Facebook stand-in: sparse undirected power-law, avg degree ≈ 3.
pub fn facebook(scale: u32) -> Graph {
    gen::rmat(
        scale,
        (3 << scale) / 2,
        RmatParams::default(),
        seed(3),
        false,
    )
}

/// Twitter stand-in: dense undirected power-law, avg degree ≈ 40–64
/// (the paper's Twitter averages 70.5 — density is what decides the
/// scatter-vs-reqresp crossover in Table VI).
pub fn twitter(scale: u32) -> Graph {
    gen::rmat(scale, 32 << scale, RmatParams::default(), seed(4), false)
}

/// Random recursive forest parents (the paper's "Tree").
pub fn tree_parents(scale: u32) -> Vec<VertexId> {
    gen::random_forest_parents(1 << scale, 1, seed(5))
}

/// Chain parents (the paper's "Chain").
pub fn chain_parents(scale: u32) -> Vec<VertexId> {
    gen::chain_parents(1 << scale)
}

/// USA-road stand-in: weighted 2-D grid with diagonals.
pub fn usa_road(scale: u32) -> WeightedGraph {
    let side = 1usize << (scale / 2);
    let rows = (1usize << scale) / side;
    gen::grid2d_weighted(rows, side, 1000, seed(6))
}

/// Unweighted road-like grid (for WCC-style runs).
pub fn usa_road_unweighted(scale: u32) -> Graph {
    let side = 1usize << (scale / 2);
    let rows = (1usize << scale) / side;
    gen::grid2d(rows, side, 0.05, seed(6))
}

/// RMAT24 stand-in: weighted power-law, avg degree 16.
pub fn rmat24(scale: u32) -> WeightedGraph {
    gen::rmat_weighted(
        scale,
        8 << scale,
        RmatParams::default(),
        seed(7),
        false,
        1 << 20,
    )
}

/// Directed graph with planted SCC structure for the Min-Label runs.
pub fn scc_web(scale: u32) -> Graph {
    let n = 1usize << scale;
    let k = (n / 24).max(4);
    gen::planted_sccs(k, 24, n, seed(8))
}

fn seed(i: u64) -> u64 {
    0x5eed_0000 + i
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::stats::graph_stats;

    #[test]
    fn densities_track_the_paper() {
        let wiki = wikipedia(10);
        let s = graph_stats(&wiki);
        assert!(
            s.avg_degree > 5.0 && s.avg_degree < 10.0,
            "wiki {:?}",
            s.avg_degree
        );

        let fb = facebook(10);
        let tw = twitter(10);
        let fb_deg = graph_stats(&fb).avg_degree;
        let tw_deg = graph_stats(&tw).avg_degree;
        assert!(
            tw_deg > 4.0 * fb_deg,
            "twitter ({tw_deg:.1}) must be much denser than facebook ({fb_deg:.1})"
        );
    }

    #[test]
    fn road_is_low_degree() {
        let road = usa_road_unweighted(10);
        let s = graph_stats(&road);
        assert!(s.avg_degree < 5.0);
        assert!(s.max_degree <= 8);
    }

    #[test]
    fn parents_are_wellformed() {
        let t = tree_parents(10);
        assert_eq!(t.len(), 1024);
        let c = chain_parents(8);
        assert_eq!(c[0], 0);
        assert_eq!(c[255], 254);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = wikipedia(9);
        let b = wikipedia(9);
        assert_eq!(a.arc_count(), b.arc_count());
    }

    #[test]
    fn env_knob_unset_uses_default() {
        use std::env::VarError;
        assert_eq!(
            parse_env_value("PC_SCALE", Err(VarError::NotPresent), 13u32),
            13
        );
        assert_eq!(parse_env_value("PC_SCALE", Ok("10".into()), 13u32), 10);
    }

    /// A set-but-unparsable knob must abort, not silently run the
    /// default configuration under the intended label.
    #[test]
    #[should_panic(expected = "PC_SCALE expects a number")]
    fn env_knob_garbage_is_a_loud_error() {
        parse_env_value("PC_SCALE", Ok("thirteen".into()), 13u32);
    }
}
