//! Table III — dataset inventory.
//!
//! Prints |V|, |E|, average degree and skew for every synthetic stand-in,
//! plus the edge-cut of the random vs locality-aware partitioners (the
//! basis for the "(P)" rows of Tables V and VII).

use pc_bench::datasets;
use pc_graph::partition;
use pc_graph::stats::graph_stats;
use pc_graph::Graph;

fn row<W: Copy>(name: &str, kind: &str, g: &Graph<W>) {
    let s = graph_stats(g);
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>9.2} {:>9} {:>7}",
        name, kind, s.n, s.m, s.avg_degree, s.max_degree, s.sinks
    );
}

fn cut_row<W: Copy + Default>(name: &str, g: &Graph<W>, workers: usize) {
    let (cut_rand, total) = partition::edge_cut(g, &partition::random_owners(g.n(), workers));
    let (cut_ldg, _) = partition::edge_cut(g, &partition::ldg(g, workers, 2));
    let (cut_bfs, _) = partition::edge_cut(g, &partition::bfs_blocks(g, workers));
    println!(
        "{:<12} {:>9} {:>13.1}% {:>13.1}% {:>13.1}%",
        name,
        total,
        100.0 * cut_rand as f64 / total.max(1) as f64,
        100.0 * cut_ldg as f64 / total.max(1) as f64,
        100.0 * cut_bfs as f64 / total.max(1) as f64,
    );
}

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    println!("=== Table III: datasets (scale 2^{scale}, {workers} workers) ===");
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "dataset", "type", "|V|", "|E|", "avg.deg", "max.deg", "sinks"
    );
    let wikipedia = datasets::wikipedia(scale);
    let webuk = datasets::webuk(scale);
    let facebook = datasets::facebook(scale);
    let twitter = datasets::twitter(scale);
    let road = datasets::usa_road(scale);
    let rmat24 = datasets::rmat24(scale.min(12));
    row("wikipedia", "directed", &wikipedia);
    row("webuk", "directed", &webuk);
    row("facebook", "undirected", &facebook);
    row("twitter", "undirected", &twitter);
    row("usa-road", "und+weight", &road);
    row("rmat24", "und+weight", &rmat24);
    let tree = datasets::tree_parents(scale);
    let chain = datasets::chain_parents(scale);
    println!(
        "{:<12} {:<12} {:>9} {:>9}",
        "tree",
        "parents",
        tree.len(),
        tree.len() - 1
    );
    println!(
        "{:<12} {:<12} {:>9} {:>9}",
        "chain",
        "parents",
        chain.len(),
        chain.len() - 1
    );

    println!();
    println!("=== partitioner edge-cut (lower is better) ===");
    println!(
        "{:<12} {:>9} {:>14} {:>14} {:>14}",
        "dataset", "arcs", "random", "ldg(2 pass)", "bfs-blocks"
    );
    cut_row("wikipedia", &wikipedia, workers);
    cut_row("usa-road", &road, workers);
    cut_row("facebook", &facebook, workers);
    println!();
    println!("paper reference (Table III): Wikipedia 18.27M/172.31M deg 9.43; WebUK 39.45M/936.36M deg 23.73;");
    println!("Facebook 59.22M/185.04M deg 3.12; Twitter 41.65M/2.94B deg 70.51; Tree/Chain 100M; USA Road 23.95M/57.71M; RMAT24 16.78M/268.44M deg 16.");
}
