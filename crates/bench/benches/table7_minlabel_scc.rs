//! Table VII — the Min-Label SCC algorithm.
//!
//! Three programs on a planted-SCC web stand-in, random and partitioned
//! placement: Pregel+ basic, channel basic, channel with Propagation
//! channels for the forward/backward floods. The paper reports ~2× from
//! the propagation swap (≈4× on the partitioned graph) — "a quick fix ...
//! not possible in any of the existing systems".

use pc_algos::scc;
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use pc_graph::partition;
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale().min(12);
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let g = Arc::new(datasets::scc_web(scale));

    let topo_rand = Arc::new(Topology::hashed(g.n(), workers));
    let owners = partition::ldg(&*g, workers, 2);
    let topo_part = Arc::new(Topology::from_owners(workers, owners));

    let mut rows = Vec::new();
    for (name, topo) in [("scc-web", &topo_rand), ("scc-web(P)", &topo_part)] {
        rows.push(Row::new(
            "1-pregel+ (basic)",
            name,
            &scc::pregel_basic(&g, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "2-channel (basic)",
            name,
            &scc::channel_basic(&g, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "3-channel (prop.)",
            name,
            &scc::channel_propagation(&g, topo, &cfg).stats,
        ));
    }

    print_table(
        "Table VII: Min-Label SCC",
        &rows,
        "wikipedia:    1) 52.15s/9.85GB 2) 61.89/4.98 3) 31.37/4.42
wikipedia(P): 1) 50.51s/2.70GB 2) 67.84/1.29 3) 13.96/1.12",
    );

    for chunk in rows.chunks(3) {
        if let [pregel, basic, prop] = chunk {
            print_ratio(
                &format!("[{}] prop speedup vs channel basic", basic.dataset),
                speedup(basic, prop),
            );
            print_ratio(
                &format!("[{}] prop speedup vs pregel basic", basic.dataset),
                speedup(pregel, prop),
            );
            print_ratio(
                &format!("[{}] channel message reduction vs pregel", basic.dataset),
                message_ratio(pregel, basic),
            );
            println!(
                "  [{}] supersteps: pregel {} / basic {} / prop {}",
                basic.dataset, pregel.supersteps, basic.supersteps, prop.supersteps
            );
        }
    }
}
