//! Criterion micro-benchmarks for the channel *mechanisms* (the paper's
//! Figs. 5–7 describe these data paths; the tables measure their
//! end-to-end effect, these benches isolate the primitive costs):
//!
//! * `fig5_scatter_combine` — producing receiver-combined messages by a
//!   linear scan of a pre-sorted edge array vs the hash-table combining of
//!   the general message path;
//! * `fig6_request_respond` — sort+dedup of request batches vs hash-set
//!   dedup, and positional vs (id, value) response encoding;
//! * `fig7_propagation` — worklist label propagation over a local subgraph
//!   vs one synchronous sweep per "superstep";
//! * `codec` — raw encode/decode throughput of the wire codec;
//! * `exchange_pooling` — one simulated exchange round with pooled buffers
//!   vs fresh allocations (the steady-state engine path vs the old one);
//! * `prop_staging` — remote-update combining through dense per-peer slot
//!   arrays + dirty lists vs a per-peer hash map (the Propagation channel's
//!   hottest path before and after this change).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pc_bsp::codec::{Codec, Reader};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hint::black_box;

const N_VERTICES: usize = 1 << 14;
const N_EDGES: usize = 1 << 17;

fn edges(seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N_EDGES)
        .map(|_| {
            (
                rng.random_range(0..N_VERTICES as u32),
                rng.random_range(0..N_VERTICES as u32),
            )
        })
        .collect()
}

fn fig5_scatter_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_scatter_combine");
    let values: Vec<u64> = (0..N_VERTICES as u64).collect();

    // Pre-sorted edge array: the scatter-combine fast path.
    let mut sorted = edges(1);
    sorted.sort_unstable();
    g.bench_function("sorted_scan", |b| {
        b.iter(|| {
            let mut out: Vec<(u32, u64)> = Vec::with_capacity(N_EDGES / 2);
            let mut i = 0;
            while i < sorted.len() {
                let dst = sorted[i].0;
                let mut acc = 0u64;
                while i < sorted.len() && sorted[i].0 == dst {
                    acc += values[sorted[i].1 as usize];
                    i += 1;
                }
                out.push((dst, acc));
            }
            black_box(out)
        })
    });

    // Hash-table combining: the general-case message path.
    let unsorted = edges(1);
    g.bench_function("hash_combine", |b| {
        b.iter(|| {
            let mut out: HashMap<u32, u64> = HashMap::with_capacity(N_EDGES / 2);
            for &(dst, src) in &unsorted {
                *out.entry(dst).or_insert(0) += values[src as usize];
            }
            black_box(out)
        })
    });
    g.finish();
}

fn fig6_request_respond(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_request_respond");
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<u32> = (0..N_EDGES)
        .map(|_| rng.random_range(0..N_VERTICES as u32 / 4))
        .collect();

    g.bench_function("sort_dedup", |b| {
        b.iter_batched(
            || requests.clone(),
            |mut reqs| {
                reqs.sort_unstable();
                reqs.dedup();
                black_box(reqs)
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("hashset_dedup", |b| {
        b.iter(|| {
            let set: HashSet<u32> = requests.iter().copied().collect();
            black_box(set)
        })
    });

    // Response encodings: positional values vs (id, value) pairs.
    let unique: Vec<u32> = {
        let mut r = requests.clone();
        r.sort_unstable();
        r.dedup();
        r
    };
    g.bench_function("respond_positional", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(unique.len() * 8);
            for &id in &unique {
                (id as u64).encode(&mut buf);
            }
            black_box(buf)
        })
    });
    g.bench_function("respond_id_value", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(unique.len() * 12);
            for &id in &unique {
                id.encode(&mut buf);
                (id as u64).encode(&mut buf);
            }
            black_box(buf)
        })
    });
    g.finish();
}

fn fig7_propagation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_propagation");
    // A local grid subgraph: worst case for synchronous sweeps.
    let side = 128usize;
    let n = side * side;
    let mut adj = vec![Vec::new(); n];
    for r in 0..side {
        for col in 0..side {
            let v = r * side + col;
            if col + 1 < side {
                adj[v].push(v + 1);
                adj[v + 1].push(v);
            }
            if r + 1 < side {
                adj[v].push(v + side);
                adj[v + side].push(v);
            }
        }
    }

    g.bench_function("async_worklist", |b| {
        b.iter(|| {
            let mut label: Vec<u32> = (0..n as u32).collect();
            let mut queue: VecDeque<usize> = (0..n).collect();
            let mut in_queue = vec![true; n];
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let l = label[u];
                for &t in &adj[u] {
                    if l < label[t] {
                        label[t] = l;
                        if !in_queue[t] {
                            in_queue[t] = true;
                            queue.push_back(t);
                        }
                    }
                }
            }
            black_box(label)
        })
    });

    g.bench_function("sync_sweeps", |b| {
        b.iter(|| {
            let mut label: Vec<u32> = (0..n as u32).collect();
            loop {
                let mut changed = false;
                // One "superstep": everyone reads neighbors once.
                let prev = label.clone();
                for (u, edges) in adj.iter().enumerate() {
                    for &t in edges {
                        if prev[t] < label[u] {
                            label[u] = prev[t];
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            black_box(label)
        })
    });
    g.finish();
}

fn codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let pairs: Vec<(u32, f64)> = (0..100_000).map(|i| (i as u32, i as f64 * 0.5)).collect();

    g.bench_function("encode_pairs", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(pairs.len() * 12);
            for p in &pairs {
                p.encode(&mut buf);
            }
            black_box(buf)
        })
    });

    let mut buf = Vec::new();
    for p in &pairs {
        p.encode(&mut buf);
    }
    g.bench_function("decode_pairs", |b| {
        b.iter(|| {
            let mut r = Reader::new(&buf);
            let mut sum = 0.0;
            while !r.is_empty() {
                let (_, v): (u32, f64) = r.get();
                sum += v;
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn exchange_pooling(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_pooling");
    const PEERS: usize = 8;
    const ROUND_BYTES: usize = 64 * 1024;
    let payload = vec![7u8; 1024];

    // Old path: every round allocates one fresh Vec per peer and drops the
    // received ones.
    g.bench_function("fresh_alloc_round", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..PEERS {
                let mut buf = Vec::new();
                while buf.len() < ROUND_BYTES {
                    buf.extend_from_slice(&payload);
                }
                total += buf.len();
                drop(buf);
            }
            black_box(total)
        })
    });

    // New path: buffers cycle through a pool, so steady-state rounds only
    // clear and refill.
    let mut pool = pc_bsp::BufferPool::new();
    g.bench_function("pooled_round", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut used = Vec::with_capacity(PEERS);
            for _ in 0..PEERS {
                let mut buf = pool.get();
                while buf.len() < ROUND_BYTES {
                    buf.extend_from_slice(&payload);
                }
                total += buf.len();
                used.push(buf);
            }
            pool.put_all(used);
            black_box(total)
        })
    });
    g.finish();
}

fn prop_staging(c: &mut Criterion) {
    let mut g = c.benchmark_group("prop_staging");
    // Remote updates of one busy round: many targets touched repeatedly
    // (label propagation folds several updates per boundary vertex).
    let targets = N_VERTICES / 4;
    let updates: Vec<(u32, u64)> = {
        let mut rng = StdRng::seed_from_u64(11);
        (0..N_EDGES)
            .map(|_| {
                (
                    rng.random_range(0..targets as u32),
                    rng.random_range(0..1u64 << 32),
                )
            })
            .collect()
    };

    g.bench_function("hashmap_stage", |b| {
        b.iter(|| {
            let mut staging: HashMap<u32, u64> = HashMap::new();
            for &(dst, v) in &updates {
                match staging.entry(dst) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let m = (*e.get()).min(v);
                        e.insert(m);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
            black_box(staging.len())
        })
    });

    let mut slots: Vec<Option<u64>> = vec![None; targets];
    let mut dirty: Vec<u32> = Vec::with_capacity(targets);
    g.bench_function("dense_slots_stage", |b| {
        b.iter(|| {
            for &(dst, v) in &updates {
                match &mut slots[dst as usize] {
                    Some(acc) => *acc = (*acc).min(v),
                    slot @ None => {
                        *slot = Some(v);
                        dirty.push(dst);
                    }
                }
            }
            let n = dirty.len();
            for dst in dirty.drain(..) {
                slots[dst as usize] = None;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    const THREADS: usize = 4;
    const CROSSINGS: usize = 1000;

    // The engine's old rendezvous: std::sync::Barrier (mutex + condvar on
    // every arrival).
    g.bench_function("std_barrier_1k_crossings", |b| {
        b.iter(|| {
            let bar = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let bar = std::sync::Arc::clone(&bar);
                    std::thread::spawn(move || {
                        for _ in 0..CROSSINGS {
                            bar.wait();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });

    // The replacement: sense-reversing spin-then-park barrier.
    g.bench_function("spin_barrier_1k_crossings", |b| {
        b.iter(|| {
            let bar = std::sync::Arc::new(pc_bsp::SpinBarrier::new(THREADS));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let bar = std::sync::Arc::clone(&bar);
                    std::thread::spawn(move || {
                        for _ in 0..CROSSINGS {
                            bar.wait();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig5_scatter_combine, fig6_request_respond, fig7_propagation, codec,
        exchange_pooling, prop_staging, barrier
}
criterion_main!(benches);
