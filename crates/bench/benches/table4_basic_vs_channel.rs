//! Table IV — basic Pregel+ vs basic channels across six algorithms.
//!
//! The channel system's *standard* channels alone (no optimized channels)
//! against the monolithic-message baseline: same algorithms, same
//! workloads. The paper reports 1.08×–2.64× runtime gains and 23%–82%
//! message reductions for the multi-phase algorithms (S-V, MSF, SCC) from
//! per-channel message types and per-channel combiners.

use pc_algos::{msf, pagerank, pointer_jumping, scc, sv, wcc};
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let mut rows = Vec::new();

    // PR on WebUK and Wikipedia (30 iterations, as in the paper).
    for (name, g) in [
        ("webuk", Arc::new(datasets::webuk(scale))),
        ("wikipedia", Arc::new(datasets::wikipedia(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        rows.push(Row::new(
            "PR  pregel (basic)",
            name,
            &pagerank::pregel_basic(&g, &topo, &cfg, 30).stats,
        ));
        rows.push(Row::new(
            "PR  channel (basic)",
            name,
            &pagerank::channel_basic(&g, &topo, &cfg, 30).stats,
        ));
    }

    // WCC on Wikipedia, random and partitioned placement.
    let wiki_sym = Arc::new(datasets::wikipedia(scale).symmetrized());
    let topo_rand = Arc::new(Topology::hashed(wiki_sym.n(), workers));
    let owners = pc_graph::partition::ldg(&*wiki_sym, workers, 2);
    let topo_part = Arc::new(Topology::from_owners(workers, owners));
    for (name, topo) in [("wikipedia", &topo_rand), ("wikipedia(P)", &topo_part)] {
        rows.push(Row::new(
            "WCC pregel (basic)",
            name,
            &wcc::pregel_basic(&wiki_sym, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "WCC channel (basic)",
            name,
            &wcc::channel_basic(&wiki_sym, topo, &cfg).stats,
        ));
    }

    // PJ on Chain and Tree.
    for (name, parents) in [
        ("chain", Arc::new(datasets::chain_parents(scale))),
        ("tree", Arc::new(datasets::tree_parents(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(parents.len(), workers));
        rows.push(Row::new(
            "PJ  pregel (basic)",
            name,
            &pointer_jumping::pregel_basic(&parents, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "PJ  channel (basic)",
            name,
            &pointer_jumping::channel_basic(&parents, &topo, &cfg).stats,
        ));
    }

    // S-V on Facebook and Twitter.
    for (name, g) in [
        ("facebook", Arc::new(datasets::facebook(scale))),
        ("twitter", Arc::new(datasets::twitter(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        rows.push(Row::new(
            "S-V pregel (basic)",
            name,
            &sv::pregel_basic(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "S-V channel (basic)",
            name,
            &sv::channel_basic(&g, &topo, &cfg).stats,
        ));
    }

    // MSF on USA-road and RMAT24.
    for (name, g) in [
        ("usa-road", Arc::new(datasets::usa_road(scale))),
        ("rmat24", Arc::new(datasets::rmat24(scale.min(12)))),
    ] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        rows.push(Row::new(
            "MSF pregel (basic)",
            name,
            &msf::pregel_basic(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "MSF channel (basic)",
            name,
            &msf::channel_basic(&g, &topo, &cfg).stats,
        ));
    }

    // SCC on the planted web, random and partitioned placement.
    let web = Arc::new(datasets::scc_web(scale.min(12)));
    let topo_rand = Arc::new(Topology::hashed(web.n(), workers));
    let owners = pc_graph::partition::ldg(&*web, workers, 2);
    let topo_part = Arc::new(Topology::from_owners(workers, owners));
    for (name, topo) in [("scc-web", &topo_rand), ("scc-web(P)", &topo_part)] {
        rows.push(Row::new(
            "SCC pregel (basic)",
            name,
            &scc::pregel_basic(&web, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "SCC channel (basic)",
            name,
            &scc::channel_basic(&web, topo, &cfg).stats,
        ));
    }

    print_table(
        "Table IV: basic Pregel+ vs basic channels",
        &rows,
        "PR webuk 212.24s/63.23GB vs 205.80s/63.23GB | wiki 47.32/14.02 vs 40.36/14.02
WCC wiki 16.96s/2.85GB vs 15.67s/2.85GB | wiki(P) 15.31/0.49 vs 15.85/0.49
PJ  chain 111.54s/39.99GB vs 69.63s/39.99GB | tree 36.25/8.56 vs 19.94/8.56
S-V facebook 49.74s/16.41GB vs 37.92s/11.46GB | twitter 382.60/112.21 vs 144.99/20.32 (5.52x)
MSF usa 27.05s/8.67GB vs 16.13s/4.86GB | rmat24 50.56/14.80 vs 45.94/12.91
SCC wiki 52.15s/9.85GB vs 61.89s/4.98GB | wiki(P) 50.51/2.70 vs 67.84/1.29",
    );

    for group in rows.chunks(2) {
        if let [a, b] = group {
            print_ratio(
                &format!(
                    "{} → {} [{}] runtime",
                    a.program.trim(),
                    b.program.trim(),
                    a.dataset
                ),
                speedup(a, b),
            );
            print_ratio(
                &format!(
                    "{} → {} [{}] message",
                    a.program.trim(),
                    b.program.trim(),
                    a.dataset
                ),
                message_ratio(a, b),
            );
        }
    }
}
