//! Emit `BENCH_exchange.json`: the exchange-path performance trajectory.
//!
//! Runs the steady-state workloads once per mode and records runtime,
//! message volume, pool hit rate and barrier crossings, so successive PRs
//! can diff the exchange path's constant factors. Run via
//! `cargo bench --bench exchange_json`; writes to the current directory
//! (override with `PC_BENCH_OUT`).

use pc_bench::report::{exchange_json, BenchEntry};
use pc_bsp::{Config, RunStats, Topology};
use pc_graph::gen;
use std::sync::Arc;

fn record(entries: &mut Vec<BenchEntry>, workload: &str, mode: &'static str, stats: RunStats) {
    println!(
        "{workload:<24} {mode:<11} {:>9.1} ms  {:>8.2} MiB  {:>4} supersteps  {:>5} rounds  pool {:>6.2}%  {:.2} crossings/round  {:>6} wire frames ({} coalesced, {} µs send / {} µs recv stalled, {} polls, {} spurious)",
        stats.millis(),
        stats.remote_mib(),
        stats.supersteps,
        stats.rounds,
        100.0 * stats.pool_hit_rate(),
        stats.crossings_per_round(),
        stats.transport.frames,
        stats.transport.coalesced_frames,
        stats.transport.send_stall_us,
        stats.transport.recv_stall_us,
        stats.transport.poll_waits,
        stats.transport.wakeups_spurious,
    );
    entries.push(BenchEntry {
        workload: workload.to_string(),
        mode,
        stats,
    });
}

fn main() {
    // Set-but-garbage knobs abort instead of silently measuring the
    // default configuration under the intended label.
    let scale: u32 = pc_bench::datasets::env_number("PC_SCALE", 12);
    let workers: usize = pc_bench::datasets::env_number("PC_WORKERS", 4);
    let n = 1usize << scale;

    let pr_graph = Arc::new(gen::rmat(
        scale,
        9 * n,
        gen::RmatParams::default(),
        42,
        true,
    ));
    let wcc_graph = Arc::new(gen::rmat(
        scale,
        4 * n,
        gen::RmatParams::default(),
        43,
        false,
    ));
    let ring = Arc::new(gen::cycle(n));

    let modes: [(&'static str, Config); 2] = [
        ("sequential", Config::sequential(workers)),
        ("threads", Config::with_workers(workers)),
    ];

    // With PC_REPS > 1, each workload runs that many times and the
    // fastest run is recorded (in-process repetition smooths scheduler
    // noise on shared machines).
    let reps: usize = pc_bench::datasets::env_number("PC_REPS", 1);
    let best = |run: &dyn Fn() -> pc_bsp::RunStats| {
        let mut best: Option<RunStats> = None;
        for _ in 0..reps.max(1) {
            let stats = run();
            if best.as_ref().is_none_or(|b| stats.elapsed < b.elapsed) {
                best = Some(stats);
            }
        }
        best.expect("at least one rep")
    };

    let mut entries = Vec::new();
    for (mode, cfg) in &modes {
        let topo = Arc::new(Topology::hashed(pr_graph.n(), workers));
        let stats = best(&|| pc_algos::pagerank::channel_scatter(&pr_graph, &topo, cfg, 20).stats);
        record(&mut entries, "pagerank_rmat_scatter", mode, stats);

        let topo = Arc::new(Topology::hashed(wcc_graph.n(), workers));
        let stats = best(&|| pc_algos::wcc::channel_propagation(&wcc_graph, &topo, cfg).stats);
        record(&mut entries, "wcc_rmat_propagation", mode, stats);

        let topo = Arc::new(Topology::blocked(ring.n(), workers));
        let stats = best(&|| pc_algos::wcc::channel_propagation(&ring, &topo, cfg).stats);
        record(&mut entries, "wcc_ring_propagation", mode, stats);
    }

    // The skewed-frontier transport duel: a hash-partitioned ring under
    // propagation WCC degenerates into a long tail of rounds whose
    // per-peer frames are tiny — exactly the regime the iPregel
    // irregularity studies single out, and where the synchronous TCP
    // backend pays one syscall-heavy frame per peer per round. The
    // batched driver's pipelined sends and coalesced super-frames are
    // measured against it here (capped scale keeps the round count in
    // the hundreds, not thousands). A high-degree hub rides along as a
    // disjoint star so the same workload also exposes degree skew: under
    // hash placement + plain propagation the hub floods its owner rank.
    let ring_n = 1usize << scale.min(9);
    let skewed = Arc::new(gen::ring_with_hub(ring_n, 4 * ring_n));
    let skewed_topo = Arc::new(Topology::hashed(skewed.n(), workers));
    let skewed_modes: [(&'static str, Config); 3] = [
        ("threads", Config::with_workers(workers)),
        ("tcp", Config::tcp(workers)),
        ("tcp-batched", Config::tcp_batched(workers)),
    ];
    for (mode, cfg) in &skewed_modes {
        let stats = best(&|| pc_algos::wcc::channel_propagation(&skewed, &skewed_topo, cfg).stats);
        record(&mut entries, "wcc_ring_skewed", mode, stats);
    }
    // Skew resistance, same workload: degree-sorted LDG streams the hub
    // first and lays the ring out contiguously (collapsing the round
    // tail), and the shipped mirror plan turns the hub's broadcast into
    // one pre-wired ghost message per rank.
    let owners = pc_graph::partition::ldg_deg(&*skewed, workers, 2);
    let base = Topology::from_owners(workers, owners);
    let tau = pc_graph::partition::default_mirror_threshold(&*skewed);
    let plan = pc_graph::partition::build_mirror_plan(&*skewed, &base, tau);
    let mirror_topo = Arc::new(base.with_mirror(Arc::new(plan)));
    for (mode, cfg) in &skewed_modes {
        let stats = best(&|| pc_algos::wcc::channel_mirror(&skewed, &mirror_topo, cfg, tau).stats);
        record(&mut entries, "wcc_ring_skewed_mirror", mode, stats);
    }

    // The wide-mesh arm: the same skewed workload across 8 ranks, which
    // oversubscribes every CI machine (and most laptops) — the regime
    // where the transport's wait strategy dominates. This is the row the
    // readiness multiplexer is judged by: its stall columns
    // (`send_stall_us` + `recv_stall_us`) record how long the driver sat
    // in kernel waits, and CI pins them against the recorded
    // synchronous-wait baseline.
    let wide_workers = 8usize;
    let wide_topo = Arc::new(Topology::hashed(skewed.n(), wide_workers));
    let wide_modes: [(&'static str, Config); 2] = [
        ("tcp", Config::tcp(wide_workers)),
        ("tcp-batched", Config::tcp_batched(wide_workers)),
    ];
    for (mode, cfg) in &wide_modes {
        let stats = best(&|| pc_algos::wcc::channel_propagation(&skewed, &wide_topo, cfg).stats);
        record(&mut entries, "wcc_ring_skewed_wide", mode, stats);
    }

    // Tracing must be a true no-op on everything the conformance contract
    // measures, and a bounded perturbation on wall clock: rerun the RMAT
    // WCC workload traced and assert its counters are identical to the
    // untraced threads row recorded above, its timeline reconciles with
    // its own totals, and it stays within a generous wall-clock envelope
    // (loose on purpose — CI machines are noisy; the real overhead gate
    // is the counter identity).
    {
        let topo = Arc::new(Topology::hashed(wcc_graph.n(), workers));
        let traced_cfg = Config {
            trace: true,
            ..Config::with_workers(workers)
        };
        let traced =
            best(&|| pc_algos::wcc::channel_propagation(&wcc_graph, &topo, &traced_cfg).stats);
        let plain = entries
            .iter()
            .find(|e| e.workload == "wcc_rmat_propagation" && e.mode == "threads")
            .map(|e| &e.stats)
            .expect("untraced wcc_rmat_propagation threads row");
        assert_eq!(
            traced.supersteps, plain.supersteps,
            "tracing changed supersteps"
        );
        assert_eq!(traced.rounds, plain.rounds, "tracing changed rounds");
        assert_eq!(
            traced.remote_bytes(),
            plain.remote_bytes(),
            "tracing changed remote bytes"
        );
        assert_eq!(
            traced.messages(),
            plain.messages(),
            "tracing changed messages"
        );
        assert_eq!(traced.pool, plain.pool, "tracing changed pool traffic");
        assert_eq!(traced.timeline.len() as u64, traced.supersteps);
        assert_eq!(
            traced.timeline.iter().map(|r| r.messages).sum::<u64>(),
            traced.messages(),
            "timeline rows do not sum to the run's message total"
        );
        assert_eq!(
            traced.timeline.iter().map(|r| r.remote_bytes).sum::<u64>(),
            traced.remote_bytes(),
            "timeline rows do not sum to the run's remote bytes"
        );
        let envelope = plain.elapsed * 5 + std::time::Duration::from_millis(250);
        assert!(
            traced.elapsed <= envelope,
            "traced run took {:?}, untraced {:?} (envelope {:?})",
            traced.elapsed,
            plain.elapsed,
            envelope
        );
        record(
            &mut entries,
            "wcc_rmat_propagation_traced",
            "threads",
            traced,
        );
    }

    let json = exchange_json(scale, workers, &entries);

    // Default to the workspace root regardless of the bench's CWD.
    let out_path = std::env::var("PC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_exchange.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("write BENCH_exchange.json");
    println!("\nwrote {out_path}");
}
