//! Table V (middle) — the Request-Respond channel on Pointer Jumping.
//!
//! Four programs on a random tree and a chain: Pregel+ basic, Pregel+
//! reqresp mode, channel basic, channel reqresp. The paper finds Pregel+'s
//! reqresp mode *slower* than its own basic mode (hash-based machinery),
//! while the channel version wins on trees and holds even on chains, with
//! a constant ~33% response-size saving from positional replies.

use pc_algos::pointer_jumping as pj;
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let mut rows = Vec::new();

    for (name, parents) in [
        ("tree", Arc::new(datasets::tree_parents(scale))),
        ("chain", Arc::new(datasets::chain_parents(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(parents.len(), workers));
        rows.push(Row::new(
            "pregel+ (basic)",
            name,
            &pj::pregel_basic(&parents, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "pregel+ (reqresp)",
            name,
            &pj::pregel_reqresp(&parents, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "channel (basic)",
            name,
            &pj::channel_basic(&parents, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "channel (reqresp)",
            name,
            &pj::channel_reqresp(&parents, &topo, &cfg).stats,
        ));
    }

    print_table(
        "Table V (middle): Request-Respond channel using PJ",
        &rows,
        "tree:  pregel+(basic) 36.25s/8.56GB; pregel+(reqresp) 54.37/2.62; channel(basic) 19.94/8.56; channel(reqresp) 11.03/1.75
chain: pregel+(basic) 111.54s/39.99GB; pregel+(reqresp) 676.19/28.87; channel(basic) 69.63/39.99; channel(reqresp) 74.10/19.24",
    );

    for chunk in rows.chunks(4) {
        if let [pb, pr, cb, cr] = chunk {
            print_ratio(
                &format!("[{}] channel reqresp speedup vs channel basic", pb.dataset),
                speedup(cb, cr),
            );
            print_ratio(
                &format!(
                    "[{}] channel reqresp vs pregel reqresp (runtime)",
                    pb.dataset
                ),
                speedup(pr, cr),
            );
            print_ratio(
                &format!(
                    "[{}] channel reqresp message reduction vs pregel reqresp",
                    pb.dataset
                ),
                message_ratio(pr, cr),
            );
        }
    }
}
