//! Table VI — composing channels in the S-V algorithm (the headline).
//!
//! Five programs on the sparse (Facebook) and dense (Twitter) stand-ins:
//! Pregel+ reqresp, channel basic, channel+reqresp, channel+scatter, and
//! the full composition. The paper's expected shape: either optimization
//! helps on its own; which one helps more depends on graph density
//! (scatter wins on dense, reqresp on sparse); the composition wins on
//! both and is 2.20× faster than Pregel+'s best.

use pc_algos::sv;
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let mut rows = Vec::new();

    for (name, g) in [
        ("facebook", Arc::new(datasets::facebook(scale))),
        ("twitter", Arc::new(datasets::twitter(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        rows.push(Row::new(
            "1-pregel+ (reqresp)",
            name,
            &sv::pregel_reqresp(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "2-channel (basic)",
            name,
            &sv::channel_basic(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "3-channel (reqresp)",
            name,
            &sv::channel_reqresp(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "4-channel (scatter)",
            name,
            &sv::channel_scatter(&g, &topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "5-channel (both)",
            name,
            &sv::channel_both(&g, &topo, &cfg).stats,
        ));
    }

    print_table(
        "Table VI: S-V with different channel combinations",
        &rows,
        "facebook: 1) 35.67s/6.33GB 2) 37.92/11.46 3) 26.83/5.45 4) 33.21/9.09 5) 22.29/3.08
twitter:  1) 182.93s/19.66GB 2) 144.99/20.32 3) 138.44/16.76 4) 87.52/13.34 5) 79.76/9.78",
    );

    for chunk in rows.chunks(5) {
        if let [pregel, basic, reqresp, scatter, both] = chunk {
            print_ratio(
                &format!("[{}] composition speedup vs channel basic", basic.dataset),
                speedup(basic, both),
            );
            print_ratio(
                &format!("[{}] composition speedup vs pregel+ reqresp", basic.dataset),
                speedup(pregel, both),
            );
            print_ratio(
                &format!("[{}] reqresp-only speedup", basic.dataset),
                speedup(basic, reqresp),
            );
            print_ratio(
                &format!("[{}] scatter-only speedup", basic.dataset),
                speedup(basic, scatter),
            );
            print_ratio(
                &format!("[{}] composition message reduction", basic.dataset),
                message_ratio(basic, both),
            );
        }
    }
}
