//! Table V (top) — the Scatter-Combine channel on PageRank.
//!
//! Four programs on Wikipedia and WebUK stand-ins: Pregel+ basic, Pregel+
//! ghost mode (mirroring, τ = 16), channel basic, channel scatter. The
//! paper reports a 3.03×–3.16× speedup and ~1/3 message reduction for the
//! scatter channel, with ghost mode saving the most bytes but not time.

use pc_algos::pagerank;
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let iters = 30;
    let mut rows = Vec::new();

    for (name, g) in [
        ("wikipedia", Arc::new(datasets::wikipedia(scale))),
        ("webuk", Arc::new(datasets::webuk(scale))),
    ] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        rows.push(Row::new(
            "pregel+ (basic)",
            name,
            &pagerank::pregel_basic(&g, &topo, &cfg, iters).stats,
        ));
        rows.push(Row::new(
            "pregel+ (ghost)",
            name,
            &pagerank::pregel_ghost(&g, &topo, &cfg, iters, 16).stats,
        ));
        rows.push(Row::new(
            "channel (basic)",
            name,
            &pagerank::channel_basic(&g, &topo, &cfg, iters).stats,
        ));
        rows.push(Row::new(
            "channel (scatter)",
            name,
            &pagerank::channel_scatter(&g, &topo, &cfg, iters).stats,
        ));
        // Extra series beyond the paper: mirroring as a composable channel.
        rows.push(Row::new(
            "channel (mirror)*",
            name,
            &pagerank::channel_mirror(&g, &topo, &cfg, iters, 16).stats,
        ));
    }

    print_table(
        "Table V (top): Scatter-Combine channel using PR (30 iterations)",
        &rows,
        "wikipedia: pregel+(basic) 47.32s/14.02GB; pregel+(ghost) 45.55/4.70; channel(basic) 40.36/14.02; channel(scatter) 15.58/9.50
webuk:     pregel+(basic) 212.24s/63.23GB; pregel+(ghost) 246.41/23.69; channel(basic) 205.80/63.23; channel(scatter) 67.00/42.86",
    );

    for chunk in rows.chunks(5) {
        if let [basic, ghost, cbasic, scatter, _mirror] = chunk {
            print_ratio(
                &format!("[{}] scatter speedup vs channel basic", basic.dataset),
                speedup(cbasic, scatter),
            );
            print_ratio(
                &format!("[{}] scatter message reduction", basic.dataset),
                message_ratio(cbasic, scatter),
            );
            print_ratio(
                &format!(
                    "[{}] ghost message reduction vs pregel basic",
                    basic.dataset
                ),
                message_ratio(basic, ghost),
            );
        }
    }
}
