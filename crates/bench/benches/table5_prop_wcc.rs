//! Table V (bottom) — the Propagation channel on WCC.
//!
//! Four programs on the symmetrized Wikipedia stand-in, under random and
//! locality-aware ("(P)", the METIS substitute) placement: Pregel+ basic,
//! Blogel (block-centric), channel basic, channel propagation. The paper
//! reports the propagation channel consistently fastest (1.67× over
//! Blogel), with the largest wins on the partitioned graph.

use pc_algos::wcc;
use pc_bench::{datasets, table::*};
use pc_bsp::{Config, Topology};
use pc_graph::partition;
use std::sync::Arc;

fn main() {
    let scale = datasets::default_scale();
    let workers = datasets::default_workers();
    let cfg = Config::with_workers(workers);
    let g = Arc::new(datasets::wikipedia(scale).symmetrized());

    let topo_rand = Arc::new(Topology::hashed(g.n(), workers));
    let owners = partition::ldg(&*g, workers, 2);
    let topo_part = Arc::new(Topology::from_owners(workers, owners));

    let mut rows = Vec::new();
    for (name, topo) in [("wikipedia", &topo_rand), ("wikipedia(P)", &topo_part)] {
        rows.push(Row::new(
            "pregel+ (basic)",
            name,
            &wcc::pregel_basic(&g, topo, &cfg).stats,
        ));
        rows.push(Row::new("blogel", name, &wcc::blogel(&g, topo, &cfg).stats));
        rows.push(Row::new(
            "channel (basic)",
            name,
            &wcc::channel_basic(&g, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "channel (prop.)",
            name,
            &wcc::channel_propagation(&g, topo, &cfg).stats,
        ));
    }

    // Extra series beyond the paper: a large-diameter road network, where
    // the superstep collapse dominates. (The paper's Wikipedia has a much
    // larger diameter than an R-MAT graph of this scale, so this row shows
    // the regime its WCC numbers come from.)
    let road = Arc::new(datasets::usa_road_unweighted(scale));
    let road_rand = Arc::new(Topology::hashed(road.n(), workers));
    let owners = partition::bfs_blocks(&*road, workers);
    let road_part = Arc::new(Topology::from_owners(workers, owners));
    for (name, topo) in [("usa-road", &road_rand), ("usa-road(P)", &road_part)] {
        rows.push(Row::new(
            "pregel+ (basic)",
            name,
            &wcc::pregel_basic(&road, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "blogel",
            name,
            &wcc::blogel(&road, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "channel (basic)",
            name,
            &wcc::channel_basic(&road, topo, &cfg).stats,
        ));
        rows.push(Row::new(
            "channel (prop.)",
            name,
            &wcc::channel_propagation(&road, topo, &cfg).stats,
        ));
    }

    print_table(
        "Table V (bottom): Propagation channel using WCC",
        &rows,
        "wikipedia:    pregel+(basic) 16.96s/2.85GB; blogel 20.39/1.11; channel(basic) 15.67/2.85; channel(prop.) 8.64/1.66
wikipedia(P): pregel+(basic) 15.31s/0.49GB; blogel 5.10/0.11; channel(basic) 15.85/0.49; channel(prop.) 3.05/0.17",
    );

    for chunk in rows.chunks(4) {
        if let [pb, blogel, cb, prop] = chunk {
            print_ratio(
                &format!("[{}] prop speedup vs channel basic", pb.dataset),
                speedup(cb, prop),
            );
            print_ratio(
                &format!("[{}] prop speedup vs blogel", pb.dataset),
                speedup(blogel, prop),
            );
            println!(
                "  [{}] supersteps: basic {} / blogel {} / prop {}",
                pb.dataset, cb.supersteps, blogel.supersteps, prop.supersteps
            );
        }
    }
}
