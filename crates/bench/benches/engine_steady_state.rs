//! End-to-end steady-state engine benchmarks.
//!
//! The micro-benches isolate primitive costs; this bench measures what the
//! exchange-path work actually bought: full PageRank and WCC runs on
//! R-MAT and ring graphs, Sequential vs Threads. PageRank (scatter
//! channel, fixed iterations) exercises the dense steady-state exchange;
//! WCC (propagation channel) exercises the multi-round fixpoint path; the
//! ring WCC run is the sparse-frontier stress (two active vertices per
//! superstep without the worklist).
//!
//! Scale with `PC_SCALE` (vertices = 2^scale, default 12 here to keep CI
//! smoke runs quick).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_bsp::{Config, Topology};
use pc_graph::{gen, Graph};
use std::sync::Arc;
use std::time::Duration;

fn scale() -> u32 {
    std::env::var("PC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn workers() -> usize {
    std::env::var("PC_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn rmat_graph() -> Arc<Graph> {
    let n = 1usize << scale();
    Arc::new(gen::rmat(
        scale(),
        9 * n,
        gen::RmatParams::default(),
        42,
        true,
    ))
}

fn rmat_sym() -> Arc<Graph> {
    let n = 1usize << scale();
    Arc::new(gen::rmat(
        scale(),
        4 * n,
        gen::RmatParams::default(),
        43,
        false,
    ))
}

fn ring() -> Arc<Graph> {
    Arc::new(gen::cycle(1usize << scale()))
}

fn configs() -> [(&'static str, Config); 2] {
    let w = workers();
    [
        ("seq", Config::sequential(w)),
        ("threads", Config::with_workers(w)),
    ]
}

fn pagerank_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_steady_state/pagerank_rmat");
    let g = rmat_graph();
    let topo = Arc::new(Topology::hashed(g.n(), workers()));
    for (name, cfg) in configs() {
        group.bench_function(name, |b| {
            b.iter(|| pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 20))
        });
    }
    group.finish();
}

fn wcc_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_steady_state/wcc_rmat");
    let g = rmat_sym();
    let topo = Arc::new(Topology::hashed(g.n(), workers()));
    for (name, cfg) in configs() {
        group.bench_function(name, |b| {
            b.iter(|| pc_algos::wcc::channel_propagation(&g, &topo, &cfg))
        });
    }
    group.finish();
}

fn wcc_sparse_frontier(c: &mut Criterion) {
    // A single huge ring under propagation WCC with a blocked partition:
    // long tails of nearly-empty supersteps, which is exactly what the
    // frontier worklist accelerates.
    let mut group = c.benchmark_group("engine_steady_state/wcc_ring");
    let g = ring();
    let topo = Arc::new(Topology::blocked(g.n(), workers()));
    for (name, cfg) in configs() {
        group.bench_function(name, |b| {
            b.iter(|| pc_algos::wcc::channel_propagation(&g, &topo, &cfg))
        });
    }
    group.finish();
}

/// Transport comparison: the same threaded driver over the shared-memory
/// hub vs real loopback sockets — the `threads`→`tcp` gap is the price
/// of a real wire. Runs in its own short-budget group because every
/// `tcp` iteration binds a fresh socket mesh whose closed connections
/// linger in TIME_WAIT; a tight iteration budget keeps long bench runs
/// well clear of ephemeral-port exhaustion.
fn transport_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_steady_state/transport_pagerank");
    let g = rmat_graph();
    let topo = Arc::new(Topology::hashed(g.n(), workers()));
    let w = workers();
    for (name, cfg) in [
        ("threads", Config::with_workers(w)),
        ("tcp", Config::tcp(w)),
        ("tcp-batched", Config::tcp_batched(w)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 20))
        });
    }
    group.finish();
}

/// The skewed-frontier transport duel: propagation WCC on a
/// hash-partitioned ring is a long tail of rounds with tiny per-peer
/// frames — the regime where the synchronous TCP backend pays one
/// syscall-heavy frame per peer per round and the batched driver's
/// pipelined, coalesced sends should win. Capped scale keeps the round
/// count in the hundreds.
fn transport_skewed_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_steady_state/transport_skewed_wcc");
    let g = Arc::new(gen::cycle(1usize << scale().min(9)));
    let topo = Arc::new(Topology::hashed(g.n(), workers()));
    let w = workers();
    for (name, cfg) in [
        ("threads", Config::with_workers(w)),
        ("tcp", Config::tcp(w)),
        ("tcp-batched", Config::tcp_batched(w)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| pc_algos::wcc::channel_propagation(&g, &topo, &cfg))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

/// Tight budget for the socket-mesh benches (see [`transport_compare`]).
fn quick_tcp() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = pagerank_steady_state, wcc_steady_state, wcc_sparse_frontier
}
criterion_group! {
    name = transport_benches;
    config = quick_tcp();
    targets = transport_compare, transport_skewed_frontier
}
criterion_main!(benches, transport_benches);
