//! Road-network analytics: the large-diameter regime where the
//! Propagation channel shines (§IV-C3), plus shortest paths.
//!
//! * WCC over a grid road network under random vs locality-aware
//!   placement — the paper's advice to "preprocess the graph by tagging a
//!   partition ID" becomes a ~10× message reduction;
//! * SSSP from a corner intersection over the weighted version.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use pc_graph::{partition, reference};
use pregel_channels::prelude::*;
use std::sync::Arc;

fn main() {
    let g = Arc::new(pc_graph::gen::grid2d(96, 96, 0.05, 3));
    let cfg = Config::with_workers(4);
    println!(
        "road network: {} intersections, {} segments",
        g.n(),
        g.edge_count()
    );

    let oracle = reference::connected_components(&g);

    // Random placement (hash) vs BFS block growing (METIS stand-in).
    let random = Arc::new(Topology::hashed(g.n(), 4));
    let owners = partition::bfs_blocks(&*g, 4);
    let (cut, total) = partition::edge_cut(&*g, &owners);
    let blocks = Arc::new(Topology::from_owners(4, owners));
    println!(
        "bfs-blocks partitioner: edge-cut {:.1}% (random ≈ 75%)",
        100.0 * cut as f64 / total as f64
    );
    println!();
    println!(
        "{:<28} {:>10} {:>12} {:>11} {:>8}",
        "WCC program", "time(ms)", "bytes(MiB)", "supersteps", "rounds"
    );
    for (name, topo) in [
        ("propagation, random", &random),
        ("propagation, partitioned", &blocks),
    ] {
        let out = pc_algos::wcc::channel_propagation(&g, topo, &cfg);
        assert_eq!(out.labels, oracle);
        println!(
            "{:<28} {:>10.1} {:>12.3} {:>11} {:>8}",
            name,
            out.stats.millis(),
            out.stats.remote_mib(),
            out.stats.supersteps,
            out.stats.rounds
        );
    }
    let basic = pc_algos::wcc::channel_basic(&g, &random, &cfg);
    assert_eq!(basic.labels, oracle);
    println!(
        "{:<28} {:>10.1} {:>12.3} {:>11} {:>8}   (one superstep per hop!)",
        "combined-message, random",
        basic.stats.millis(),
        basic.stats.remote_mib(),
        basic.stats.supersteps,
        basic.stats.rounds
    );

    // Shortest paths over the weighted grid.
    let wg = Arc::new(pc_graph::gen::grid2d_weighted(96, 96, 1000, 3));
    let topo = Arc::new(Topology::hashed(wg.n(), 4));
    let sssp = pc_algos::sssp::channel_basic(&wg, &topo, &cfg, 0);
    let dijkstra = reference::sssp(&wg, 0);
    let reached = sssp
        .dist
        .iter()
        .filter(|&&d| d != pc_algos::sssp::UNREACHED)
        .count();
    for (v, d) in dijkstra.iter().enumerate() {
        assert_eq!(d.unwrap_or(u64::MAX), sssp.dist[v], "sssp mismatch at {v}");
    }
    println!();
    println!(
        "SSSP from intersection 0: {} reachable, farthest cost {}, verified vs Dijkstra ✓",
        reached,
        sssp.dist
            .iter()
            .filter(|&&d| d != pc_algos::sssp::UNREACHED)
            .max()
            .unwrap()
    );
}
