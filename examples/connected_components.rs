//! The paper's headline: composing optimizations in the S-V
//! connected-components algorithm (§III-C, Table VI).
//!
//! Runs all four channel combinations of the 2×2 grid — {basic, reqresp} ×
//! {basic, scatter} — on a social-network-like graph, verifies every
//! result against a sequential union-find, and prints the cost matrix.
//!
//! ```sh
//! cargo run --release --example connected_components
//! ```

use pc_graph::reference;
use pregel_channels::prelude::*;
use std::sync::Arc;

fn main() {
    // A sparse "friendship" graph with many components.
    let g = Arc::new(pc_graph::gen::rmat(
        13,
        14_000,
        pc_graph::gen::RmatParams::default(),
        7,
        false,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let cfg = Config::with_workers(4);

    let oracle = reference::connected_components(&g);
    let n_components = reference::component_count(&oracle);
    println!(
        "graph: {} vertices, {} edges, {} components",
        g.n(),
        g.edge_count(),
        n_components
    );
    println!();
    println!(
        "{:<22} {:>10} {:>12} {:>11}",
        "program", "time(ms)", "bytes(MiB)", "supersteps"
    );

    type SvProgram = fn(&Arc<Graph>, &Arc<Topology>, &Config) -> pc_algos::sv::SvOutput;
    let programs: [(&str, SvProgram); 4] = [
        ("basic + basic", pc_algos::sv::channel_basic),
        ("reqresp + basic", pc_algos::sv::channel_reqresp),
        ("basic + scatter", pc_algos::sv::channel_scatter),
        ("reqresp + scatter", pc_algos::sv::channel_both),
    ];
    for (name, run) in programs {
        let out = run(&g, &topo, &cfg);
        assert_eq!(out.labels, oracle, "S-V ({name}) disagrees with union-find");
        println!(
            "{:<22} {:>10.1} {:>12.3} {:>11}",
            name,
            out.stats.millis(),
            out.stats.remote_mib(),
            out.stats.supersteps
        );
    }
    println!();
    println!("every program verified against sequential union-find ✓");
    println!("(the composition row is the paper's 'program 5' — fastest and smallest)");
}
