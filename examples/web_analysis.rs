//! Web-graph analysis: SCC structure of a directed web via the Min-Label
//! algorithm, with the Propagation channel "quick fix" of §V-C2.
//!
//! ```sh
//! cargo run --release --example web_analysis
//! ```

use pc_graph::reference;
use pregel_channels::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    // A directed "web" with planted link-cycles plus a power-law overlay.
    let g = Arc::new(pc_graph::gen::planted_sccs(180, 16, 9_000, 11));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let cfg = Config::with_workers(4);

    println!("web graph: {} pages, {} links", g.n(), g.arc_count());
    let oracle = reference::strongly_connected_components(&g);

    let basic = pc_algos::scc::channel_basic(&g, &topo, &cfg);
    let prop = pc_algos::scc::channel_propagation(&g, &topo, &cfg);
    assert_eq!(basic.labels, oracle, "basic SCC disagrees with Tarjan");
    assert_eq!(prop.labels, oracle, "propagation SCC disagrees with Tarjan");

    println!();
    println!(
        "{:<24} {:>10} {:>12} {:>11}",
        "program", "time(ms)", "bytes(MiB)", "supersteps"
    );
    for (name, out) in [
        ("channel (basic)", &basic),
        ("channel (propagation)", &prop),
    ] {
        println!(
            "{:<24} {:>10.1} {:>12.3} {:>11}",
            name,
            out.stats.millis(),
            out.stats.remote_mib(),
            out.stats.supersteps
        );
    }

    // SCC size distribution.
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for &l in &prop.labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let mut by_size: Vec<usize> = sizes.values().copied().collect();
    by_size.sort_unstable_by(|a, b| b.cmp(a));
    println!();
    println!(
        "{} SCCs; largest: {:?}; singletons: {}",
        by_size.len(),
        &by_size[..by_size.len().min(5)],
        by_size.iter().filter(|&&s| s == 1).count()
    );
    println!("verified against sequential Tarjan ✓");
}
