//! Quickstart: the paper's Fig. 1 PageRank, then the §III-B one-line
//! optimization (swap the message channel for a scatter-combine channel).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pregel_channels::prelude::*;
use std::sync::Arc;

fn main() {
    // A power-law web of 2^12 pages (R-MAT), 4 simulated workers.
    let g = Arc::new(pc_graph::gen::rmat(
        12,
        40_000,
        pc_graph::gen::RmatParams::default(),
        42,
        true,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let cfg = Config::with_workers(4);

    println!("graph: {} vertices, {} arcs", g.n(), g.arc_count());

    // The standard program: CombinedMessage + Aggregator (paper Fig. 1).
    let basic = pc_algos::pagerank::channel_basic(&g, &topo, &cfg, 30);
    // The optimized program: one channel swapped (paper §III-B).
    let scatter = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 30);

    // Identical results...
    let drift: f64 = basic
        .ranks
        .iter()
        .zip(&scatter.ranks)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max rank difference between programs: {drift:.2e}");

    // ...different costs.
    for (name, out) in [("channel (basic)", &basic), ("channel (scatter)", &scatter)] {
        println!(
            "{name:<18} {:>8.1} ms  {:>8.3} MiB  {} supersteps",
            out.stats.millis(),
            out.stats.remote_mib(),
            out.stats.supersteps
        );
    }

    // Top pages.
    let mut ranked: Vec<(usize, f64)> = scatter.ranks.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 pages by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!(
            "  vertex {v:>6}  rank {r:.6}  in-deg≈{}",
            g.degree(*v as u32)
        );
    }
}
