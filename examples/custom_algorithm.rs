//! Writing a *new* algorithm against the channel API — the workflow the
//! paper proposes for users: pick one channel per communication pattern.
//!
//! The algorithm: **average neighbor degree** (a common social-network
//! statistic). Every vertex needs its neighbors' degrees — a static
//! broadcast, so the scatter-combine channel fits; the global average is
//! an aggregator.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Aggregator, Combine, ScatterCombine};
use pregel_channels::prelude::*;
use std::sync::Arc;

/// Per-vertex result: (sum of neighbor degrees, neighbor count).
#[derive(Debug, Clone, Default)]
struct NbrDegree {
    avg: f64,
}

struct AvgNeighborDegree {
    g: Arc<Graph>,
}

impl Algorithm for AvgNeighborDegree {
    type Value = NbrDegree;
    // One channel per pattern: a static broadcast and a global reduction.
    type Channels = (ScatterCombine<(u64, u64)>, Aggregator<(f64, u64)>);

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        let sum_pairs = Combine::new((0u64, 0u64), |acc: &mut (u64, u64), v: (u64, u64)| {
            acc.0 += v.0;
            acc.1 += v.1;
        });
        let sum_avg = Combine::new((0.0f64, 0u64), |acc: &mut (f64, u64), v: (f64, u64)| {
            acc.0 += v.0;
            acc.1 += v.1;
        });
        (
            ScatterCombine::new(env, sum_pairs),
            Aggregator::new(env, sum_avg),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut NbrDegree, ch: &mut Self::Channels) {
        match v.step() {
            1 => {
                // Register routes and broadcast (degree, 1) to neighbors.
                for &t in self.g.neighbors(v.id) {
                    ch.0.add_edge(v.local, t);
                }
                ch.0.set_message(v.local, (self.g.degree(v.id) as u64, 1));
            }
            2 => {
                let (sum, count) = ch.0.get_or_identity(v.local);
                if count > 0 {
                    value.avg = sum as f64 / count as f64;
                    ch.1.add((value.avg, 1));
                }
            }
            _ => v.vote_to_halt(),
        }
    }
}

fn main() {
    let g = Arc::new(pc_graph::gen::rmat(
        12,
        30_000,
        pc_graph::gen::RmatParams::default(),
        5,
        false,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let out = run(
        &AvgNeighborDegree { g: Arc::clone(&g) },
        &topo,
        &Config::with_workers(4),
    );

    // Oracle check, then a summary.
    for v in 0..g.n().min(50) as u32 {
        let nbrs = g.neighbors(v);
        if !nbrs.is_empty() {
            let expect: f64 =
                nbrs.iter().map(|&t| g.degree(t) as f64).sum::<f64>() / nbrs.len() as f64;
            assert!((out.values[v as usize].avg - expect).abs() < 1e-9);
        }
    }
    let with_nbrs = out.values.iter().filter(|x| x.avg > 0.0).count();
    let friends_paradox = out
        .values
        .iter()
        .enumerate()
        .filter(|(v, x)| x.avg > g.degree(*v as u32) as f64)
        .count();
    println!("graph: {} vertices, {} arcs", g.n(), g.arc_count());
    println!(
        "friendship paradox: {}/{} vertices have fewer friends than their friends do",
        friends_paradox, with_nbrs
    );
    println!(
        "run: {} supersteps, {:.3} MiB exchanged, {:.1} ms",
        out.stats.supersteps,
        out.stats.remote_mib(),
        out.stats.millis()
    );
}
